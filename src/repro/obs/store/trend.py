"""Per-metric trajectories across ingested runs: ``repro obs trend``.

A *trend* is one metric's value extracted from every selected run, in
ingest order, optionally gated: the latest value is compared against the
MAD band (:mod:`repro.obs.drift`) of the preceding values, exactly the
detector the bench ledger uses, so "this metric regressed across runs"
and "this bench run drifted" are the same mathematics.

Metric names resolve in priority order against a run's records:

1. a **registry metric** (``kind=metric``) — stat ``value`` for
   counters/gauges (summed over label series), ``sum``/``count``/
   ``p50``/``p95``/``p99`` for histograms (quantile stats take the
   worst — largest — series, the conservative choice for gating);
2. a **timeline series** (``kind=sample``) — stats ``mean``/``max``/
   ``last`` over the run's samples;
3. a **span name** (``kind=span``) — total duration across occurrences;
4. a **bench row** (``kind=bench``) — its recorded value.

``stat="auto"`` picks value/sum/mean/sum/value respectively.  Runs where
the metric is absent are skipped (they contribute no point), so mixed
stores gate cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.drift import (
    DEFAULT_MAD_K,
    DEFAULT_MIN_RECORDS,
    DEFAULT_REL_FLOOR,
    DIRECTIONS,
    DriftCheck,
    check_value,
)
from repro.obs.store.core import RunRow, RunStore

__all__ = [
    "DEFAULT_TREND_WINDOW",
    "MetricTrend",
    "STATS",
    "TrendPoint",
    "compute_trend",
    "compute_trends",
    "render_trends",
    "run_metric_value",
]

#: Supported per-run aggregation stats.
STATS = ("auto", "value", "sum", "count", "mean", "max", "last", "p50", "p95", "p99")

#: How many trailing points form the reference window for gating.
DEFAULT_TREND_WINDOW = 10

_HISTOGRAM_STATS = ("sum", "count", "p50", "p95", "p99")


@dataclass(frozen=True)
class TrendPoint:
    """One run's contribution to a metric trajectory."""

    run_key: str
    seq: int
    value: float
    label: str
    scenario_digest: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "run_key": self.run_key,
            "seq": self.seq,
            "value": self.value,
            "label": self.label,
            "scenario_digest": self.scenario_digest,
        }


@dataclass(frozen=True)
class MetricTrend:
    """A metric's trajectory plus its (optional) gate verdict."""

    metric: str
    stat: str
    points: Tuple[TrendPoint, ...]
    check: Optional[DriftCheck] = None

    @property
    def failed(self) -> bool:
        """Whether the gate flagged the latest point as drift."""
        return self.check is not None and self.check.failed

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "metric": self.metric,
            "stat": self.stat,
            "points": [p.to_dict() for p in self.points],
            "check": self.check.to_dict() if self.check else None,
            "failed": self.failed,
        }


def run_metric_value(
    records: Sequence[dict], metric: str, stat: str = "auto"
) -> Optional[float]:
    """``metric`` aggregated to one number for a run, or ``None`` if absent."""
    if stat not in STATS:
        raise ConfigurationError(
            f"unknown trend stat {stat!r}; expected one of {STATS}"
        )
    metric_rows = [
        r for r in records
        if r.get("kind") == "metric" and r.get("name") == metric
    ]
    if metric_rows:
        if metric_rows[0].get("metric_type") == "histogram":
            wanted = "sum" if stat == "auto" else stat
            if wanted not in _HISTOGRAM_STATS:
                raise ConfigurationError(
                    f"stat {stat!r} does not apply to histogram {metric!r}; "
                    f"expected one of {_HISTOGRAM_STATS}"
                )
            values = [
                float(r[wanted]) for r in metric_rows if wanted in r
            ]
            if not values:
                return None
            if wanted in ("sum", "count"):
                return sum(values)
            # Quantile columns cannot be summed across label series; the
            # largest one is the conservative estimate for a cost gate.
            return max(values)
        if stat not in ("auto", "value", "sum"):
            raise ConfigurationError(
                f"stat {stat!r} does not apply to "
                f"{metric_rows[0].get('metric_type')} {metric!r}"
            )
        return sum(float(r.get("value", 0.0)) for r in metric_rows)
    samples = [
        float(r.get("value", 0.0))
        for r in records
        if r.get("kind") == "sample" and r.get("series") == metric
    ]
    if samples:
        wanted = "mean" if stat == "auto" else stat
        if wanted == "mean":
            return sum(samples) / len(samples)
        if wanted == "max":
            return max(samples)
        if wanted == "last":
            return samples[-1]
        if wanted == "sum":
            return sum(samples)
        raise ConfigurationError(
            f"stat {stat!r} does not apply to timeline series {metric!r}; "
            "expected mean, max, last, or sum"
        )
    spans = [
        float(r.get("dur", 0.0))
        for r in records
        if r.get("kind") == "span" and r.get("name") == metric
    ]
    if spans:
        if stat in ("auto", "sum"):
            return sum(spans)
        if stat == "max":
            return max(spans)
        if stat == "mean":
            return sum(spans) / len(spans)
        if stat == "count":
            return float(len(spans))
        raise ConfigurationError(
            f"stat {stat!r} does not apply to span {metric!r}; "
            "expected sum, max, mean, or count"
        )
    bench = [
        float(r.get("value", 0.0))
        for r in records
        if r.get("kind") == "bench" and r.get("name") == metric
    ]
    if bench:
        return bench[-1] if stat in ("auto", "value", "last") else None
    return None


def compute_trend(
    store: RunStore,
    metric: str,
    runs: Optional[Sequence[RunRow]] = None,
    stat: str = "auto",
    direction: str = "above",
    window: int = DEFAULT_TREND_WINDOW,
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_records: int = DEFAULT_MIN_RECORDS,
    gate: bool = True,
) -> MetricTrend:
    """One metric's trajectory over ``runs`` (default: every run), gated.

    The gate compares the *latest* point against the MAD band of the
    ``window`` points before it; fewer than ``min_records`` prior points
    means no verdict (``check is None``) — an informational pass.
    """
    if direction not in DIRECTIONS:
        raise ConfigurationError(
            f"unknown drift direction {direction!r}; expected one of {DIRECTIONS}"
        )
    if window < 1:
        raise ConfigurationError(f"window must be >= 1: {window}")
    rows = store.runs() if runs is None else list(runs)
    points: List[TrendPoint] = []
    for row in rows:
        value = run_metric_value(store.records(row), metric, stat=stat)
        if value is None:
            continue
        points.append(
            TrendPoint(
                run_key=row.run_key,
                seq=row.seq,
                value=value,
                label=row.label,
                scenario_digest=row.scenario_digest,
            )
        )
    check: Optional[DriftCheck] = None
    if gate and points:
        history = [p.value for p in points[:-1]][-window:]
        check = check_value(
            metric,
            points[-1].value,
            history,
            direction=direction,
            mad_k=mad_k,
            rel_floor=rel_floor,
            min_records=min_records,
        )
    return MetricTrend(metric=metric, stat=stat, points=tuple(points), check=check)


def compute_trends(
    store: RunStore,
    metrics: Sequence[str],
    runs: Optional[Sequence[RunRow]] = None,
    **kwargs,
) -> List[MetricTrend]:
    """:func:`compute_trend` for each metric, sharing the run selection."""
    rows = store.runs() if runs is None else list(runs)
    return [compute_trend(store, metric, runs=rows, **kwargs) for metric in metrics]


def render_trends(trends: Sequence[MetricTrend]) -> str:
    """Trajectories + verdicts as deterministic text."""
    lines: List[str] = []
    failures = 0
    for trend in trends:
        values = " ".join(f"{p.value:g}" for p in trend.points)
        lines.append(
            f"trend {trend.metric} [{trend.stat}]: "
            f"{len(trend.points)} point(s): {values}"
        )
        if trend.check is None:
            lines.append(
                "  no gate verdict (not enough prior points) -- informational pass"
            )
        else:
            lines.append("  " + trend.check.describe())
            if trend.check.failed:
                failures += 1
    lines.append(
        f"trend: {failures} regression(s) across {len(trends)} metric(s)"
        if failures
        else f"trend: ok ({len(trends)} metric(s))"
    )
    return "\n".join(lines)
