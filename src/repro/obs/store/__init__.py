"""The run registry: content-addressed ingest, cross-run query and trends.

* :mod:`repro.obs.store.core` — :class:`RunStore`: ingest telemetry
  directories (and bench reports) into an append-only, content-addressed
  store under ``.repro/store/``; idempotent by digest, crash-safe via
  :mod:`repro.atomicio`, corrupt segments quarantined.
* :mod:`repro.obs.store.query` — the ``repro obs query`` engine: run- and
  record-level filters with deterministic, byte-identical output.
* :mod:`repro.obs.store.trend` — per-metric trajectories across runs,
  gated by the shared MAD-band drift detector (:mod:`repro.obs.drift`).
* :mod:`repro.obs.store.report` — the static HTML trend dashboard.
"""

from repro.obs.store.core import (
    DEFAULT_STORE_DIR,
    IngestResult,
    RunRow,
    RunStore,
    STORE_SCHEMA_VERSION,
)
from repro.obs.store.query import parse_where, run_query, select_runs
from repro.obs.store.trend import MetricTrend, TrendPoint, compute_trend, compute_trends
from repro.obs.store.report import render_store_html, write_store_report

__all__ = [
    "DEFAULT_STORE_DIR",
    "IngestResult",
    "MetricTrend",
    "RunRow",
    "RunStore",
    "STORE_SCHEMA_VERSION",
    "TrendPoint",
    "compute_trend",
    "compute_trends",
    "parse_where",
    "render_store_html",
    "run_query",
    "select_runs",
    "write_store_report",
]
