"""Regression diffing of telemetry manifests and benchmark reports.

``repro obs diff BASELINE CANDIDATE`` flattens two JSON documents — run
manifests (``manifest.json`` / a telemetry directory) or any numeric JSON
such as ``BENCH_exec.json`` — into dotted-path → number maps, then reports
the per-key relative deltas.  Exit codes are CI-friendly:

* ``0`` — every shared numeric key is within the threshold,
* ``2`` — a document could not be read or parsed,
* ``3`` — at least one delta exceeds ``--threshold``.

Manifests are flattened *semantically* rather than structurally: phase
durations become ``durations.<phase>``, metric series become
``metrics.<name>{label=value,...}`` (histograms contribute ``.sum`` and
``.count``), and volatile identity fields (``run_id``, ``created_unix``,
``argv``, provenance) are excluded so two runs of the same configuration
diff clean.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.manifest import MANIFEST_FILENAME

__all__ = [
    "DiffResult",
    "KeyDelta",
    "diff_documents",
    "diff_paths",
    "flatten_document",
    "flatten_manifest",
    "load_document",
    "render_diff",
]

#: Manifest keys that identify the run rather than describe its behaviour.
_MANIFEST_VOLATILE = ("run_id", "created_unix", "argv", "provenance", "config")


@dataclass(frozen=True)
class KeyDelta:
    """One numeric key present in both documents."""

    key: str
    baseline: float
    candidate: float

    @property
    def rel_delta(self) -> float:
        """Relative change vs the baseline (0/0 → 0, x/0 → inf)."""
        if self.baseline == self.candidate:
            return 0.0
        if self.baseline == 0.0:
            return float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)


@dataclass
class DiffResult:
    """The flattened comparison of two documents."""

    deltas: List[KeyDelta]
    only_baseline: List[str]
    only_candidate: List[str]

    def exceeding(self, threshold: float) -> List[KeyDelta]:
        """Deltas whose relative magnitude is beyond ``threshold``."""
        return [d for d in self.deltas if abs(d.rel_delta) > threshold]

    def max_rel_delta(self) -> float:
        """Largest relative-delta magnitude across shared keys."""
        return max((abs(d.rel_delta) for d in self.deltas), default=0.0)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def flatten_document(data: Any, prefix: str = "") -> Dict[str, float]:
    """Every numeric leaf of a JSON document, keyed by dotted path."""
    out: Dict[str, float] = {}
    if _is_number(data):
        out[prefix or "value"] = float(data)
    elif isinstance(data, dict):
        for key in sorted(data):
            child = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_document(data[key], child))
    elif isinstance(data, list):
        for i, item in enumerate(data):
            out.update(flatten_document(item, f"{prefix}[{i}]"))
    return out


def _series_key(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


def flatten_manifest(data: Dict[str, Any]) -> Dict[str, float]:
    """Semantic flattening of a run-manifest dict (volatile keys dropped)."""
    out: Dict[str, float] = {"n_events": float(data.get("n_events", 0))}
    for phase, seconds in (data.get("durations") or {}).items():
        out[f"durations.{phase}"] = float(seconds)
    for name, family in sorted((data.get("metrics") or {}).items()):
        kind = family.get("kind")
        for series in family.get("series", []):
            key = _series_key(f"metrics.{name}", series.get("labels") or {})
            if kind == "histogram":
                out[f"{key}.sum"] = float(series.get("sum", 0.0))
                out[f"{key}.count"] = float(series.get("count", 0))
            else:
                out[key] = float(series.get("value", 0.0))
    return out


def _looks_like_manifest(data: Any) -> bool:
    return isinstance(data, dict) and "durations" in data and "run_id" in data


def load_document(path: str) -> Tuple[Dict[str, float], str]:
    """Load + flatten ``path``; returns ``(flat_map, kind)``.

    ``path`` may be a telemetry directory, a ``manifest.json``, or any JSON
    file of numbers (e.g. a BENCH report).
    """
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_FILENAME)
    if not os.path.exists(path):
        raise ConfigurationError(f"no such document: {path!r}")
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except ValueError as exc:
            raise ConfigurationError(f"{path!r} is not valid JSON: {exc}") from exc
    if _looks_like_manifest(data):
        return flatten_manifest(data), "manifest"
    if isinstance(data, dict):
        data = {k: v for k, v in data.items() if k not in _MANIFEST_VOLATILE}
    return flatten_document(data), "json"


def diff_documents(
    baseline: Dict[str, float], candidate: Dict[str, float]
) -> DiffResult:
    """Compare two flattened documents key by key."""
    shared = sorted(set(baseline) & set(candidate))
    return DiffResult(
        deltas=[KeyDelta(k, baseline[k], candidate[k]) for k in shared],
        only_baseline=sorted(set(baseline) - set(candidate)),
        only_candidate=sorted(set(candidate) - set(baseline)),
    )


def diff_paths(baseline_path: str, candidate_path: str) -> DiffResult:
    """Load, flatten and compare two documents on disk."""
    base, base_kind = load_document(baseline_path)
    cand, cand_kind = load_document(candidate_path)
    if base_kind != cand_kind:
        raise ConfigurationError(
            f"cannot diff a {base_kind} against a {cand_kind} "
            f"({baseline_path!r} vs {candidate_path!r})"
        )
    return diff_documents(base, cand)


def _fmt_rel(rel: float) -> str:
    if rel == float("inf"):
        return "   +inf"
    return f"{100.0 * rel:+6.1f}%"


def render_diff(
    result: DiffResult,
    threshold: float,
    show_all: bool = False,
    limit: Optional[int] = 40,
) -> str:
    """Human-readable diff report, worst offenders first."""
    rows = result.deltas if show_all else result.exceeding(threshold)
    rows = sorted(rows, key=lambda d: -abs(d.rel_delta))
    shown = rows if limit is None else rows[:limit]
    lines = [
        f"{len(result.deltas)} shared keys, "
        f"{len(result.exceeding(threshold))} beyond ±{100 * threshold:g}% "
        f"(max {_fmt_rel(result.max_rel_delta()).strip()})"
    ]
    for d in shown:
        lines.append(
            f"  {_fmt_rel(d.rel_delta)}  {d.key}  "
            f"{d.baseline:g} -> {d.candidate:g}"
        )
    if limit is not None and len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more")
    for key in result.only_baseline[:10]:
        lines.append(f"  only in baseline:  {key}")
    for key in result.only_candidate[:10]:
        lines.append(f"  only in candidate: {key}")
    return "\n".join(lines)
