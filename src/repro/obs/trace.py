"""Cross-process trace propagation.

A *trace* is one logical telemetry activation, possibly spanning several
processes: the parent session plus every worker shard it fans tasks out to.
The :class:`TraceContext` is the tiny, picklable capsule that crosses the
``ProcessPoolExecutor`` boundary inside a
:class:`~repro.exec.api.RunRequest`: it carries the parent's ``trace_id``,
the span under which the task was submitted, and where (if anywhere) the
worker should stream its shard artifacts.

Trace ids are *deterministic* — derived from the session label alone — so
two identically configured runs produce byte-identical event streams (the
property the chaos CI job asserts).  Volatile inputs (pids, timestamps,
telemetry paths) are deliberately excluded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.obs.timeline import TimelineConfig

__all__ = ["TraceContext", "derive_trace_id"]


def derive_trace_id(label: str) -> str:
    """Deterministic 16-hex-digit trace id derived from the session label."""
    return hashlib.sha256(label.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to join its parent's trace."""

    #: The parent session's trace id (every shard record carries it).
    trace_id: str
    #: Span open in the parent when the task was submitted (``None`` when
    #: the task was submitted at top level); worker root spans are
    #: re-parented under it at merge time.
    parent_span_id: Optional[int] = None
    #: The parent session's label (worker shards reuse it, suffixed).
    label: str = "run"
    #: Submission index of the task within its batch.
    task_index: int = 0
    #: Directory the worker writes its shard artifacts under (``None`` for
    #: directory-less parent sessions).
    shard_dir: Optional[str] = None
    #: The parent session's sampling policy, so worker shards sample their
    #: runs on the same grid (``None`` when the parent has sampling off).
    timeline: Optional[TimelineConfig] = None

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "label": self.label,
            "task_index": self.task_index,
            "shard_dir": self.shard_dir,
            "timeline": None if self.timeline is None else self.timeline.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        parent = data.get("parent_span_id")
        shard_dir = data.get("shard_dir")
        timeline = data.get("timeline")
        return cls(
            trace_id=str(data["trace_id"]),
            parent_span_id=None if parent is None else int(parent),
            label=str(data.get("label", "run")),
            task_index=int(data.get("task_index", 0)),
            shard_dir=None if shard_dir is None else str(shard_dir),
            timeline=None if timeline is None else TimelineConfig.from_dict(timeline),
        )
