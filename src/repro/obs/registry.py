"""The process-wide metrics registry: counters, gauges and histograms.

Zero-dependency, deliberately small.  A registry holds *families* keyed by
metric name; each family holds labelled *series* (children), Prometheus
style::

    reg = MetricsRegistry()
    reg.counter("repro_storage_writes_total").inc()
    reg.histogram("repro_pipeline_phase_seconds", phase="viz").observe(3.2)
    snap = reg.snapshot()          # plain nested dict, JSON-safe
    reg.reset()                    # tests start from a clean slate

Metric names must follow the ``repro_<layer>_<name>_<unit>`` convention
(:mod:`repro.obs.naming`); violations raise at creation time.  Histograms
use *fixed* bucket bounds chosen at family creation, so observation is O(len
buckets) with no allocation.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.naming import validate_metric_name

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "default_registry",
]

#: Default histogram bucket upper bounds (seconds-oriented, wide enough for
#: both wall-clock phases and simulated campaign phases).  ``+inf`` implied.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0, 86400.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_quantile(
    cumulative: Sequence[Tuple[float, int]], q: float
) -> float:
    """Quantile ``q`` estimated from ``(upper_bound, cumulative_count)`` pairs.

    The Prometheus ``histogram_quantile`` estimator: locate the bucket the
    rank falls into and interpolate linearly inside it, taking the bucket's
    lower edge from the previous bound (0 for the first bucket — the
    project's histograms record non-negative quantities).  A rank landing
    in the ``+inf`` overflow bucket returns the last finite bound, the only
    honest point estimate available.  ``nan`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    if not cumulative:
        return float("nan")
    total = cumulative[-1][1]
    if total == 0:
        return float("nan")
    rank = q * total
    lower = 0.0
    prev_count = 0
    for bound, count in cumulative:
        if count >= rank and count > prev_count:
            if bound == float("inf"):
                return lower
            return lower + (bound - lower) * (rank - prev_count) / (
                count - prev_count
            )
        if bound != float("inf"):
            lower = bound
        prev_count = count
    return lower


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]) -> None:
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(f"counter increment must be >= 0, got {amount}")
        self.value += float(amount)


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]) -> None:
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= float(amount)


class Histogram:
    """Fixed-bucket histogram with cumulative-count exposition."""

    __slots__ = ("labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(self, labels: Dict[str, str], bounds: Sequence[float]) -> None:
        self.labels = dict(labels)
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Quantile ``q`` by linear interpolation within the fixed buckets.

        See :func:`bucket_quantile` for the estimator; ``nan`` before the
        first observation.
        """
        return bucket_quantile(self.cumulative(), q)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """All series sharing one metric name."""

    __slots__ = ("name", "kind", "help", "bounds", "series")

    def __init__(self, name: str, kind: str, help: str, bounds: Optional[Sequence[float]]) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = tuple(bounds) if bounds is not None else None
        self.series: Dict[_LabelKey, object] = {}

    def child(self, labels: Dict[str, str]):
        key = _label_key(labels)
        metric = self.series.get(key)
        if metric is None:
            if self.kind == "histogram":
                metric = Histogram(labels, self.bounds or DEFAULT_BUCKETS)
            else:
                metric = _KINDS[self.kind](labels)
            self.series[key] = metric
        return metric


class MetricsRegistry:
    """A named collection of metric families with snapshot/reset semantics."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -------------------------------------------------------------- creation

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        bounds: Optional[Sequence[float]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            validate_metric_name(name)
            family = _Family(name, kind, help, bounds)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, requested as {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter series for ``name`` + ``labels`` (created on first use)."""
        return self._family(name, "counter", help).child(labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge series for ``name`` + ``labels``."""
        return self._family(name, "gauge", help).child(labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        """The histogram series for ``name`` + ``labels``.

        ``buckets`` (ascending upper bounds, ``+inf`` implied) is fixed by
        the first call that creates the family; later calls must pass the
        same bounds or ``None``.
        """
        if buckets is not None and sorted(buckets) != list(buckets):
            raise ConfigurationError(f"histogram buckets must ascend: {buckets}")
        family = self._family(name, "histogram", help, bounds=buckets)
        if buckets is not None and family.bounds is not None \
                and tuple(buckets) != family.bounds:
            raise ConfigurationError(
                f"metric {name!r} already has buckets {family.bounds}"
            )
        return family.child(labels)

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._families)

    def families(self) -> Iterator[_Family]:
        """Families in name order (for exposition)."""
        for name in sorted(self._families):
            yield self._families[name]

    def snapshot(self) -> Dict[str, dict]:
        """The whole registry as a plain, JSON-safe nested dict."""
        out: Dict[str, dict] = {}
        for family in self.families():
            series = []
            for metric in family.series.values():
                if isinstance(metric, Histogram):
                    series.append(
                        {
                            "labels": dict(metric.labels),
                            "count": metric.count,
                            "sum": metric.sum,
                            "buckets": [
                                ["+Inf" if le == float("inf") else le, n]
                                for le, n in metric.cumulative()
                            ],
                        }
                    )
                else:
                    series.append(
                        {"labels": dict(metric.labels), "value": metric.value}
                    )
            out[family.name] = {"kind": family.kind, "series": series}
        return out

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histogram contents add; gauges take the incoming value
        (last write wins, matching in-order shard merging).  Families are
        created on demand; kind or bucket-bound mismatches raise, since a
        shard disagreeing with its parent about a metric's shape is a bug.
        """
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = str(data.get("kind", ""))
            if kind not in _KINDS:
                raise ConfigurationError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )
            # Create the family even when the snapshot carries no series yet
            # — dropping it would make the merged exposition lose the
            # family's TYPE declaration (and, for histograms, its zero
            # _sum/_count baseline), leaving scrape deltas ill-defined.
            self._family(name, kind, "")
            for series in data.get("series", []):
                labels = {
                    str(k): str(v) for k, v in (series.get("labels") or {}).items()
                }
                if kind == "counter":
                    self._family(name, kind, "").child(labels).inc(
                        float(series.get("value", 0.0))
                    )
                elif kind == "gauge":
                    self._family(name, kind, "").child(labels).set(
                        float(series.get("value", 0.0))
                    )
                else:
                    buckets = series.get("buckets") or []
                    bounds = tuple(
                        float(le) for le, _ in buckets if le != "+Inf"
                    )
                    family = self._family(name, kind, "", bounds=bounds or None)
                    hist = family.child(labels)
                    if bounds and bounds != hist.bounds:
                        raise ConfigurationError(
                            f"metric {name!r} bucket bounds {bounds} do not "
                            f"match existing {hist.bounds}"
                        )
                    if len(buckets) != len(hist.bucket_counts):
                        raise ConfigurationError(
                            f"metric {name!r} has {len(buckets)} buckets in the "
                            f"snapshot but {len(hist.bucket_counts)} here"
                        )
                    previous = 0
                    for i, (_, cumulative) in enumerate(buckets):
                        hist.bucket_counts[i] += int(cumulative) - previous
                        previous = int(cumulative)
                    hist.sum += float(series.get("sum", 0.0))
                    hist.count += int(series.get("count", 0))

    def reset(self) -> None:
        """Drop every family — tests start from a clean registry."""
        self._families.clear()


#: The process-wide registry used by the instrumentation helpers.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
