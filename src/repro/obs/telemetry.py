"""Sessions, spans and the module-level instrumentation helpers.

This is the layer the rest of the library talks to.  Instrumentation points
call the module-level helpers (:func:`span`, :func:`phase`, :func:`event`,
:func:`counter`, :func:`gauge`, :func:`observe`); when no session is active
every helper is a cheap no-op, so telemetry-off runs are bit-identical to
uninstrumented ones.  Activating a session::

    from repro import obs

    with obs.session(directory="out/telemetry", label="characterize") as tel:
        ...instrumented work...

writes three artifacts into the directory: ``events.jsonl`` (the span/event
stream), ``manifest.json`` (the :class:`~repro.obs.manifest.RunManifest`)
and ``metrics.prom`` (Prometheus text exposition of the registry).

Spans nest: each open span becomes the parent of spans and phases recorded
inside it, and each record carries its clock *domain* — ``"wall"`` for real
(perf-counter) time, ``"sim"`` for discrete-event simulated time — because
this library routinely times both in one process.  Sessions are
single-threaded by design, matching the library's execution model.
"""

from __future__ import annotations

import functools
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.exporters import JsonlWriter, write_prometheus
from repro.obs.manifest import (
    EVENTS_FILENAME,
    PROM_FILENAME,
    TIMELINE_FILENAME,
    RunManifest,
    collect_provenance,
)
from repro.obs.registry import MetricsRegistry, default_registry
from repro.obs.timeline import TimelineConfig
from repro.obs.trace import TraceContext, derive_trace_id

__all__ = [
    "PHASE_SECONDS_METRIC",
    "SHARDS_DIRNAME",
    "SIM",
    "Span",
    "TelemetrySession",
    "WALL",
    "active",
    "counter",
    "enabled",
    "event",
    "gauge",
    "observe",
    "phase",
    "session",
    "shard_session",
    "span",
]

#: Clock-domain labels carried by every span/phase record.
WALL = "wall"
SIM = "sim"

#: Histogram fed by every recorded phase (labelled by phase name).
PHASE_SECONDS_METRIC = "repro_pipeline_phase_seconds"

#: In-memory tail of recent records kept by every session (for tests and
#: directory-less sessions).
RECENT_CAPACITY = 512

#: Subdirectory of a session's telemetry directory holding worker shards.
SHARDS_DIRNAME = "shards"


class TelemetrySession:
    """One activation of the telemetry layer.

    Owns the JSONL writer, the span stack, per-phase duration totals and a
    reference to the metrics registry (the process-wide default unless a
    private one is injected for tests).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        label: str = "run",
        registry: Optional[MetricsRegistry] = None,
        argv: Optional[List[str]] = None,
        config: Optional[Dict[str, Any]] = None,
        trace: Optional[TraceContext] = None,
        keep_records: bool = False,
        timeline: Optional[TimelineConfig] = None,
    ) -> None:
        self.directory = directory
        self.label = label
        self.registry = registry if registry is not None else default_registry()
        self.argv = list(argv) if argv is not None else []
        self.config = dict(config) if config is not None else {}
        self.created_unix = time.time()
        #: Owning process.  Forked pool workers inherit ``_ACTIVE`` (and its
        #: open file handle); the helpers treat a session from another pid
        #: as absent, so workers fall through to their own shard sessions
        #: instead of corrupting the parent's stream.
        self.pid = os.getpid()
        self.run_id = f"{label}-{self.pid}-{int(self.created_unix)}"
        #: The trace this session belongs to.  Root sessions derive a
        #: deterministic id from their label; shard sessions join the
        #: parent's trace via the propagated :class:`TraceContext`.
        self.trace = trace
        self.trace_id = trace.trace_id if trace is not None else derive_trace_id(label)
        self.phase_totals: Dict[str, float] = {}
        self.recent: Deque[dict] = deque(maxlen=RECENT_CAPACITY)
        #: Full record retention (shard sessions keep everything so the
        #: parent can merge them; root sessions keep only ``recent``).
        self.records: Optional[List[dict]] = [] if keep_records else None
        self.closed = False
        self._writer: Optional[JsonlWriter] = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._writer = JsonlWriter(os.path.join(directory, EVENTS_FILENAME))
        self._seq = 0
        self._n_spans = 0
        self._stack: List[int] = []
        #: Sampling policy for this session.  Shard sessions inherit the
        #: parent's via the propagated trace unless given one explicitly.
        self.timeline = (
            timeline
            if timeline is not None
            else (trace.timeline if trace is not None else None)
        )
        #: Timeline samples keep their own sequence counter and their own
        #: ``timeline.jsonl`` stream (created lazily, on the first sample):
        #: with sampling off, no timeline file exists and ``events.jsonl``
        #: is byte-identical to a pre-timeline session.
        self._timeline_seq = 0
        self.timeline_recent: Deque[dict] = deque(maxlen=RECENT_CAPACITY)
        self.timeline_records: Optional[List[dict]] = [] if keep_records else None
        self._timeline_writer: Optional[JsonlWriter] = None

    # ------------------------------------------------------------- emission

    @property
    def n_events(self) -> int:
        """Records emitted so far."""
        return self._seq

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span, or None at top level."""
        return self._stack[-1] if self._stack else None

    def _emit(self, record: dict) -> None:
        self._seq += 1
        record["seq"] = self._seq
        record["trace"] = self.trace_id
        self.recent.append(record)
        if self.records is not None:
            self.records.append(record)
        if self._writer is not None:
            self._writer.write(record)

    @property
    def n_timeline(self) -> int:
        """Timeline samples emitted so far."""
        return self._timeline_seq

    def emit_timeline(self, record: dict) -> None:
        """Append one timeline sample to the session's timeline stream."""
        self._timeline_seq += 1
        record["seq"] = self._timeline_seq
        record["trace"] = self.trace_id
        self.timeline_recent.append(record)
        if self.timeline_records is not None:
            self.timeline_records.append(record)
        if self._timeline_writer is None and self.directory is not None:
            self._timeline_writer = JsonlWriter(
                os.path.join(self.directory, TIMELINE_FILENAME)
            )
        if self._timeline_writer is not None:
            self._timeline_writer.write(record)

    def open_span(self) -> tuple:
        """Allocate a span id; returns ``(span_id, parent_id)``."""
        self._n_spans += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(self._n_spans)
        return self._n_spans, parent

    def close_span(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        t0: float,
        t1: float,
        domain: str,
        attrs: Dict[str, Any],
    ) -> None:
        """Pop ``span_id`` and emit its record."""
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        record = {
            "type": "span",
            "name": name,
            "domain": domain,
            "t0": t0,
            "t1": t1,
            "dur": t1 - t0,
            "id": span_id,
            "parent": parent_id,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def phase(
        self, name: str, t0: float, t1: float, domain: str = SIM, **attrs: Any
    ) -> None:
        """Record one explicit-times phase segment (and feed the metrics)."""
        duration = t1 - t0
        self.phase_totals[name] = self.phase_totals.get(name, 0.0) + duration
        self.registry.histogram(PHASE_SECONDS_METRIC, phase=name).observe(duration)
        self._n_spans += 1
        record = {
            "type": "phase",
            "name": name,
            "domain": domain,
            "t0": t0,
            "t1": t1,
            "dur": duration,
            "id": self._n_spans,
            "parent": self._stack[-1] if self._stack else None,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def event(self, name: str, **fields: Any) -> None:
        """Record one point event (parented to the innermost open span)."""
        record: dict = {"type": "event", "name": name}
        if self._stack:
            record["parent"] = self._stack[-1]
        if fields:
            record["fields"] = fields
        self._emit(record)

    # --------------------------------------------------------------- sharding

    def shard_payload(self) -> dict:
        """This shard session's full state, ready to cross a process boundary.

        Returned inside :class:`~repro.exec.api.RunResult` by pool workers;
        the parent folds it back in with :meth:`merge_shard`.  Requires a
        ``keep_records=True`` session.
        """
        if self.records is None:
            raise ConfigurationError(
                "shard_payload() needs a keep_records=True session"
            )
        return {
            "trace_id": self.trace_id,
            "parent_span_id": (
                self.trace.parent_span_id if self.trace is not None else None
            ),
            "events": list(self.records),
            "timeline": list(self.timeline_records or ()),
            "metrics": self.registry.snapshot(),
            "n_spans": self._n_spans,
            "phase_totals": dict(self.phase_totals),
        }

    def merge_shard(self, payload: dict) -> None:
        """Fold one worker shard into this session, loss-free.

        Worker-local span ids are remapped by a base offset (this session's
        current span count), worker root spans are re-parented under the
        span that was open at submission time, and every record is
        re-emitted here — so merging shards *in submission order* yields a
        stream byte-identical to the same tasks run inline.  Metrics merge
        additively into this session's registry; phase totals accumulate.
        """
        trace_id = payload.get("trace_id")
        if trace_id is not None and trace_id != self.trace_id:
            raise ConfigurationError(
                f"shard belongs to trace {trace_id!r}, not {self.trace_id!r}"
            )
        parent_id = payload.get("parent_span_id")
        base = self._n_spans
        for rec in payload.get("events", ()):
            rec = dict(rec)
            if rec.get("id") is not None:
                rec["id"] = int(rec["id"]) + base
            if rec.get("parent") is not None:
                rec["parent"] = int(rec["parent"]) + base
            elif parent_id is not None:
                rec["parent"] = parent_id
            self._emit(rec)
        for rec in payload.get("timeline", ()):
            # Re-stamped with this session's timeline seq + trace; merging
            # shards in submission order keeps parallel == serial.
            self.emit_timeline(dict(rec))
        self._n_spans = base + int(payload.get("n_spans", 0))
        for name, seconds in (payload.get("phase_totals") or {}).items():
            self.phase_totals[name] = self.phase_totals.get(name, 0.0) + float(seconds)
        self.registry.merge(payload.get("metrics") or {})

    # --------------------------------------------------------------- closing

    def manifest(self) -> RunManifest:
        """The session's current state as a :class:`RunManifest`."""
        return RunManifest(
            label=self.label,
            run_id=self.run_id,
            created_unix=self.created_unix,
            argv=self.argv,
            config=self.config,
            durations=dict(self.phase_totals),
            metrics=self.registry.snapshot(),
            provenance=collect_provenance(self.config),
            n_events=self._seq,
            n_timeline=self._timeline_seq,
            trace_id=self.trace_id,
        )

    def close(self) -> Optional[str]:
        """Write the manifest + exposition and close the stream.

        Returns the manifest path (None for directory-less sessions).
        Idempotent.
        """
        if self.closed:
            return None
        self.closed = True
        if self._writer is not None:
            self._writer.close()
        if self._timeline_writer is not None:
            self._timeline_writer.close()
        if self.directory is None:
            return None
        write_prometheus(self.registry, os.path.join(self.directory, PROM_FILENAME))
        return self.manifest().write(self.directory)


#: The active session, if any.  Single-threaded by design; process-local
#: (a forked worker sees its parent's session here but must not use it).
_ACTIVE: Optional[TelemetrySession] = None


def active() -> Optional[TelemetrySession]:
    """The active session owned by *this* process, or None."""
    sess = _ACTIVE
    if sess is not None and sess.pid != os.getpid():
        return None
    return sess


def enabled() -> bool:
    """True while this process owns an active telemetry session."""
    return active() is not None


@contextmanager
def session(
    directory: Optional[str] = None,
    label: str = "run",
    registry: Optional[MetricsRegistry] = None,
    argv: Optional[List[str]] = None,
    config: Optional[Dict[str, Any]] = None,
    trace: Optional[TraceContext] = None,
    keep_records: bool = False,
    timeline: Optional[TimelineConfig] = None,
) -> Iterator[TelemetrySession]:
    """Activate telemetry for the dynamic extent of the block."""
    global _ACTIVE
    if active() is not None:
        raise ConfigurationError(
            f"telemetry session {_ACTIVE.run_id!r} is already active"
        )
    sess = TelemetrySession(
        directory=directory, label=label, registry=registry, argv=argv,
        config=config, trace=trace, keep_records=keep_records,
        timeline=timeline,
    )
    _ACTIVE = sess
    try:
        yield sess
    finally:
        _ACTIVE = None
        sess.close()


@contextmanager
def shard_session(trace: TraceContext) -> Iterator[TelemetrySession]:
    """Activate a worker-side shard session joined to ``trace``.

    The shard uses a *private* registry (the parent merges the snapshot, so
    sharing the process default would double-count when workers are reused)
    and retains every record for :meth:`TelemetrySession.shard_payload`.
    With a ``shard_dir`` in the context it also streams its own
    ``events.jsonl``/manifest under ``shard_dir/task-NNNNN`` for post-mortem
    inspection of killed runs.
    """
    directory = None
    if trace.shard_dir is not None:
        directory = os.path.join(trace.shard_dir, f"task-{trace.task_index:05d}")
    with session(
        directory=directory,
        label=f"{trace.label}-task{trace.task_index:05d}",
        registry=MetricsRegistry(),
        trace=trace,
        keep_records=True,
    ) as sess:
        yield sess


ClockLike = Union[Callable[[], float], Any]


class Span:
    """A named, attributed, nestable timing scope.

    Context manager *and* decorator.  ``clock`` may be a zero-argument
    callable or any object with a ``now`` attribute (e.g. a
    :class:`~repro.events.engine.Simulator`); when given, the span is
    recorded in the ``"sim"`` domain unless ``domain`` overrides it.
    When no session is active, entry and exit are near-free no-ops.
    """

    __slots__ = ("name", "clock", "domain", "attrs", "_session", "_sid", "_parent", "_t0")

    def __init__(
        self,
        name: str,
        clock: Optional[ClockLike] = None,
        domain: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        self.name = name
        self.clock = clock
        self.domain = domain if domain is not None else (WALL if clock is None else SIM)
        self.attrs = attrs
        self._session: Optional[TelemetrySession] = None

    def _now(self) -> float:
        if self.clock is None:
            return time.perf_counter()
        if callable(self.clock):
            return float(self.clock())
        return float(self.clock.now)

    def __enter__(self) -> "Span":
        sess = active()
        self._session = sess
        if sess is None:
            return self
        self._sid, self._parent = sess.open_span()
        self._t0 = self._now()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        sess = self._session
        self._session = None
        if sess is None:
            return False
        attrs = dict(self.attrs)
        if exc_type is not None:
            attrs["error"] = exc_type.__name__
        sess.close_span(
            self._sid, self._parent, self.name, self._t0, self._now(),
            self.domain, attrs,
        )
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with Span(self.name, clock=self.clock, domain=self.domain, **self.attrs):
                return fn(*args, **kwargs)

        return wrapper


def span(
    name: str,
    clock: Optional[ClockLike] = None,
    domain: Optional[str] = None,
    **attrs: Any,
) -> Span:
    """A :class:`Span` — use as ``with obs.span(...)`` or ``@obs.span(...)``."""
    return Span(name, clock=clock, domain=domain, **attrs)


def phase(name: str, t0: float, t1: float, domain: str = SIM, **attrs: Any) -> None:
    """Record an explicit-times phase segment (no-op when disabled)."""
    sess = active()
    if sess is not None:
        sess.phase(name, t0, t1, domain, **attrs)


def event(name: str, **fields: Any) -> None:
    """Record a point event (no-op when disabled)."""
    sess = active()
    if sess is not None:
        sess.event(name, **fields)


def counter(name: str, value: float = 1.0, **labels: str) -> None:
    """Increment a counter in the session registry (no-op when disabled)."""
    sess = active()
    if sess is not None:
        sess.registry.counter(name, **labels).inc(value)


def gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge in the session registry (no-op when disabled)."""
    sess = active()
    if sess is not None:
        sess.registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: str) -> None:
    """Observe into a histogram in the session registry (no-op when disabled)."""
    sess = active()
    if sess is not None:
        sess.registry.histogram(name, **labels).observe(value)
