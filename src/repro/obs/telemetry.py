"""Sessions, spans and the module-level instrumentation helpers.

This is the layer the rest of the library talks to.  Instrumentation points
call the module-level helpers (:func:`span`, :func:`phase`, :func:`event`,
:func:`counter`, :func:`gauge`, :func:`observe`); when no session is active
every helper is a cheap no-op, so telemetry-off runs are bit-identical to
uninstrumented ones.  Activating a session::

    from repro import obs

    with obs.session(directory="out/telemetry", label="characterize") as tel:
        ...instrumented work...

writes three artifacts into the directory: ``events.jsonl`` (the span/event
stream), ``manifest.json`` (the :class:`~repro.obs.manifest.RunManifest`)
and ``metrics.prom`` (Prometheus text exposition of the registry).

Spans nest: each open span becomes the parent of spans and phases recorded
inside it, and each record carries its clock *domain* — ``"wall"`` for real
(perf-counter) time, ``"sim"`` for discrete-event simulated time — because
this library routinely times both in one process.  Sessions are
single-threaded by design, matching the library's execution model.
"""

from __future__ import annotations

import functools
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.exporters import JsonlWriter, write_prometheus
from repro.obs.manifest import (
    EVENTS_FILENAME,
    PROM_FILENAME,
    RunManifest,
    collect_provenance,
)
from repro.obs.registry import MetricsRegistry, default_registry

__all__ = [
    "PHASE_SECONDS_METRIC",
    "SIM",
    "Span",
    "TelemetrySession",
    "WALL",
    "active",
    "counter",
    "enabled",
    "event",
    "gauge",
    "observe",
    "phase",
    "session",
    "span",
]

#: Clock-domain labels carried by every span/phase record.
WALL = "wall"
SIM = "sim"

#: Histogram fed by every recorded phase (labelled by phase name).
PHASE_SECONDS_METRIC = "repro_pipeline_phase_seconds"

#: In-memory tail of recent records kept by every session (for tests and
#: directory-less sessions).
RECENT_CAPACITY = 512


class TelemetrySession:
    """One activation of the telemetry layer.

    Owns the JSONL writer, the span stack, per-phase duration totals and a
    reference to the metrics registry (the process-wide default unless a
    private one is injected for tests).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        label: str = "run",
        registry: Optional[MetricsRegistry] = None,
        argv: Optional[List[str]] = None,
        config: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.directory = directory
        self.label = label
        self.registry = registry if registry is not None else default_registry()
        self.argv = list(argv) if argv is not None else []
        self.config = dict(config) if config is not None else {}
        self.created_unix = time.time()
        self.run_id = f"{label}-{os.getpid()}-{int(self.created_unix)}"
        self.phase_totals: Dict[str, float] = {}
        self.recent: Deque[dict] = deque(maxlen=RECENT_CAPACITY)
        self.closed = False
        self._writer: Optional[JsonlWriter] = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._writer = JsonlWriter(os.path.join(directory, EVENTS_FILENAME))
        self._seq = 0
        self._n_spans = 0
        self._stack: List[int] = []

    # ------------------------------------------------------------- emission

    @property
    def n_events(self) -> int:
        """Records emitted so far."""
        return self._seq

    def _emit(self, record: dict) -> None:
        self._seq += 1
        record["seq"] = self._seq
        self.recent.append(record)
        if self._writer is not None:
            self._writer.write(record)

    def open_span(self) -> tuple:
        """Allocate a span id; returns ``(span_id, parent_id)``."""
        self._n_spans += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(self._n_spans)
        return self._n_spans, parent

    def close_span(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        t0: float,
        t1: float,
        domain: str,
        attrs: Dict[str, Any],
    ) -> None:
        """Pop ``span_id`` and emit its record."""
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        record = {
            "type": "span",
            "name": name,
            "domain": domain,
            "t0": t0,
            "t1": t1,
            "dur": t1 - t0,
            "id": span_id,
            "parent": parent_id,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def phase(
        self, name: str, t0: float, t1: float, domain: str = SIM, **attrs: Any
    ) -> None:
        """Record one explicit-times phase segment (and feed the metrics)."""
        duration = t1 - t0
        self.phase_totals[name] = self.phase_totals.get(name, 0.0) + duration
        self.registry.histogram(PHASE_SECONDS_METRIC, phase=name).observe(duration)
        self._n_spans += 1
        record = {
            "type": "phase",
            "name": name,
            "domain": domain,
            "t0": t0,
            "t1": t1,
            "dur": duration,
            "id": self._n_spans,
            "parent": self._stack[-1] if self._stack else None,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def event(self, name: str, **fields: Any) -> None:
        """Record one point event."""
        record: dict = {"type": "event", "name": name}
        if fields:
            record["fields"] = fields
        self._emit(record)

    # --------------------------------------------------------------- closing

    def manifest(self) -> RunManifest:
        """The session's current state as a :class:`RunManifest`."""
        return RunManifest(
            label=self.label,
            run_id=self.run_id,
            created_unix=self.created_unix,
            argv=self.argv,
            config=self.config,
            durations=dict(self.phase_totals),
            metrics=self.registry.snapshot(),
            provenance=collect_provenance(self.config),
            n_events=self._seq,
        )

    def close(self) -> Optional[str]:
        """Write the manifest + exposition and close the stream.

        Returns the manifest path (None for directory-less sessions).
        Idempotent.
        """
        if self.closed:
            return None
        self.closed = True
        if self._writer is not None:
            self._writer.close()
        if self.directory is None:
            return None
        write_prometheus(self.registry, os.path.join(self.directory, PROM_FILENAME))
        return self.manifest().write(self.directory)


#: The active session, if any.  Single-threaded by design.
_ACTIVE: Optional[TelemetrySession] = None


def active() -> Optional[TelemetrySession]:
    """The active session, or None."""
    return _ACTIVE


def enabled() -> bool:
    """True while a telemetry session is active."""
    return _ACTIVE is not None


@contextmanager
def session(
    directory: Optional[str] = None,
    label: str = "run",
    registry: Optional[MetricsRegistry] = None,
    argv: Optional[List[str]] = None,
    config: Optional[Dict[str, Any]] = None,
) -> Iterator[TelemetrySession]:
    """Activate telemetry for the dynamic extent of the block."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise ConfigurationError(
            f"telemetry session {_ACTIVE.run_id!r} is already active"
        )
    sess = TelemetrySession(
        directory=directory, label=label, registry=registry, argv=argv, config=config
    )
    _ACTIVE = sess
    try:
        yield sess
    finally:
        _ACTIVE = None
        sess.close()


ClockLike = Union[Callable[[], float], Any]


class Span:
    """A named, attributed, nestable timing scope.

    Context manager *and* decorator.  ``clock`` may be a zero-argument
    callable or any object with a ``now`` attribute (e.g. a
    :class:`~repro.events.engine.Simulator`); when given, the span is
    recorded in the ``"sim"`` domain unless ``domain`` overrides it.
    When no session is active, entry and exit are near-free no-ops.
    """

    __slots__ = ("name", "clock", "domain", "attrs", "_session", "_sid", "_parent", "_t0")

    def __init__(
        self,
        name: str,
        clock: Optional[ClockLike] = None,
        domain: Optional[str] = None,
        **attrs: Any,
    ) -> None:
        self.name = name
        self.clock = clock
        self.domain = domain if domain is not None else (WALL if clock is None else SIM)
        self.attrs = attrs
        self._session: Optional[TelemetrySession] = None

    def _now(self) -> float:
        if self.clock is None:
            return time.perf_counter()
        if callable(self.clock):
            return float(self.clock())
        return float(self.clock.now)

    def __enter__(self) -> "Span":
        sess = _ACTIVE
        self._session = sess
        if sess is None:
            return self
        self._sid, self._parent = sess.open_span()
        self._t0 = self._now()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        sess = self._session
        self._session = None
        if sess is None:
            return False
        attrs = dict(self.attrs)
        if exc_type is not None:
            attrs["error"] = exc_type.__name__
        sess.close_span(
            self._sid, self._parent, self.name, self._t0, self._now(),
            self.domain, attrs,
        )
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with Span(self.name, clock=self.clock, domain=self.domain, **self.attrs):
                return fn(*args, **kwargs)

        return wrapper


def span(
    name: str,
    clock: Optional[ClockLike] = None,
    domain: Optional[str] = None,
    **attrs: Any,
) -> Span:
    """A :class:`Span` — use as ``with obs.span(...)`` or ``@obs.span(...)``."""
    return Span(name, clock=clock, domain=domain, **attrs)


def phase(name: str, t0: float, t1: float, domain: str = SIM, **attrs: Any) -> None:
    """Record an explicit-times phase segment (no-op when disabled)."""
    sess = _ACTIVE
    if sess is not None:
        sess.phase(name, t0, t1, domain, **attrs)


def event(name: str, **fields: Any) -> None:
    """Record a point event (no-op when disabled)."""
    sess = _ACTIVE
    if sess is not None:
        sess.event(name, **fields)


def counter(name: str, value: float = 1.0, **labels: str) -> None:
    """Increment a counter in the session registry (no-op when disabled)."""
    sess = _ACTIVE
    if sess is not None:
        sess.registry.counter(name, **labels).inc(value)


def gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge in the session registry (no-op when disabled)."""
    sess = _ACTIVE
    if sess is not None:
        sess.registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: str) -> None:
    """Observe into a histogram in the session registry (no-op when disabled)."""
    sess = _ACTIVE
    if sess is not None:
        sess.registry.histogram(name, **labels).observe(value)
