"""Declarative SLO watchdogs over sampled timelines.

A :class:`WatchRule` names a timeline series (exactly, or by ``prefix*``
selector), a predicate and a debounce window; a :class:`Watchdog` evaluates
its rules against every sample the :class:`~repro.obs.timeline.TimelineSampler`
takes and returns :class:`Alert` objects with *episode* semantics: a rule
fires once when its predicate has held for ``for_seconds`` of simulated
time, then stays quiet until the predicate clears and breaches again.

Rules are pure data and the watchdog is pure state — neither touches the
telemetry session.  The sampler turns returned alerts into ``obs.alert``
events and ``repro_alert_<name>_total`` counters, so alerting is exactly as
deterministic as the simulation that produced the samples.

Two rule kinds:

* ``threshold`` — compare the sampled value against ``threshold`` with
  ``op`` (one of ``>``, ``>=``, ``<``, ``<=``);
* ``growth`` — breach when the series has *strictly increased* across
  ``window`` consecutive samples (queue growth without drain).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.naming import alert_metric_name, validate_timeline_series_name

__all__ = [
    "Alert",
    "SEVERITIES",
    "WatchRule",
    "Watchdog",
    "default_exec_rules",
    "default_rules",
    "severity_rank",
]

#: Alert severities, mildest first.
SEVERITIES = ("info", "warning", "critical")

#: Threshold predicate spellings.
_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}

_KINDS = ("threshold", "growth")

#: Default fill fraction at which the OST / filesystem rules alert.
FILL_ALERT_RATIO = 0.9

#: Default consecutive-sample window for the queue-growth rule.
GROWTH_WINDOW = 6

#: Supervised-executor retries at which the retry-storm rule alerts.
EXEC_RETRY_STORM_THRESHOLD = 8


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in :data:`SEVERITIES` (higher = worse)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ConfigurationError(
            f"unknown severity {severity!r} (one of {', '.join(SEVERITIES)})"
        ) from None


@dataclass(frozen=True)
class WatchRule:
    """One declarative SLO: series selector, predicate, debounce, severity."""

    #: Snake-case rule name; the alert counter is ``repro_alert_<name>_total``.
    name: str
    #: Timeline series to watch — exact name, or a ``prefix*`` selector that
    #: matches every sampled series starting with the prefix (each match
    #: keeps independent breach state).
    series: str
    op: str = ">"
    threshold: float = 0.0
    #: Debounce: the predicate must hold for this much *simulated* time
    #: before the rule fires (0 = fire on the first breached sample).
    for_seconds: float = 0.0
    severity: str = "warning"
    kind: str = "threshold"
    #: Growth rules: number of consecutive samples that must each increase.
    window: int = GROWTH_WINDOW
    description: str = ""

    def __post_init__(self) -> None:
        # Validates the snake-case rule name as a side effect.
        alert_metric_name(self.name)
        validate_timeline_series_name(self.series)
        if self.op not in _OPS:
            raise ConfigurationError(
                f"unknown predicate op {self.op!r} (one of {', '.join(_OPS)})"
            )
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown rule kind {self.kind!r} (one of {', '.join(_KINDS)})"
            )
        severity_rank(self.severity)
        if self.for_seconds < 0:
            raise ConfigurationError(
                f"negative debounce window: {self.for_seconds}"
            )
        if self.kind == "growth" and self.window < 2:
            raise ConfigurationError(
                f"growth window must be >= 2 samples, got {self.window}"
            )

    @property
    def metric_name(self) -> str:
        """The ``repro_alert_<name>_total`` counter this rule increments."""
        return alert_metric_name(self.name)

    def matches(self, series: str) -> bool:
        """True when ``series`` is selected by this rule."""
        if self.series.endswith("*"):
            return series.startswith(self.series[:-1])
        return series == self.series


@dataclass(frozen=True)
class Alert:
    """One watchdog firing: a rule's predicate held through its debounce."""

    rule: str
    series: str
    severity: str
    #: Simulated time of the sample that completed the debounce window.
    t: float
    value: float
    threshold: float
    message: str = ""

    def to_fields(self) -> dict:
        """JSON-safe payload for the ``obs.alert`` event record."""
        return {
            "rule": self.rule,
            "series": self.series,
            "severity": self.severity,
            "t": self.t,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


class _RuleState:
    """Per-(rule, matched-series) breach bookkeeping."""

    __slots__ = ("breach_start", "fired", "history")

    def __init__(self, window: int) -> None:
        self.breach_start: Optional[float] = None
        self.fired = False
        self.history: Deque[float] = deque(maxlen=window)


class Watchdog:
    """Evaluates a rule set against successive timeline samples."""

    def __init__(self, rules: Sequence[WatchRule]) -> None:
        names = [rule.name for rule in rules]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(
                f"duplicate watch rule name(s): {', '.join(duplicates)}"
            )
        self.rules: Tuple[WatchRule, ...] = tuple(rules)
        self._state: Dict[Tuple[str, str], _RuleState] = {}
        #: Every alert ever returned by :meth:`observe`, in firing order.
        self.alerts: List[Alert] = []

    def _state_for(self, rule: WatchRule, series: str) -> _RuleState:
        key = (rule.name, series)
        state = self._state.get(key)
        if state is None:
            state = _RuleState(rule.window)
            self._state[key] = state
        return state

    def observe(self, t: float, values: Mapping[str, float]) -> List[Alert]:
        """Evaluate every rule against one sample; returns fresh alerts.

        ``values`` is the sample's ``{series: value}`` mapping.  Series a
        rule selects but the sample lacks are skipped (their breach state is
        untouched), so heterogeneous samplers can share one watchdog.
        """
        fired: List[Alert] = []
        for rule in self.rules:
            for series in sorted(values):
                if not rule.matches(series):
                    continue
                value = float(values[series])
                state = self._state_for(rule, series)
                if rule.kind == "growth":
                    breached = self._growth_breached(state, value)
                else:
                    breached = _OPS[rule.op](value, rule.threshold)
                alert = self._advance(rule, series, state, t, value, breached)
                if alert is not None:
                    fired.append(alert)
        self.alerts.extend(fired)
        return fired

    @staticmethod
    def _growth_breached(state: _RuleState, value: float) -> bool:
        history = state.history
        history.append(value)
        if len(history) < history.maxlen:
            return False
        samples = list(history)
        return all(b > a for a, b in zip(samples, samples[1:]))

    def _advance(
        self,
        rule: WatchRule,
        series: str,
        state: _RuleState,
        t: float,
        value: float,
        breached: bool,
    ) -> Optional[Alert]:
        if not breached:
            state.breach_start = None
            state.fired = False
            return None
        if state.breach_start is None:
            state.breach_start = t
        if state.fired or (t - state.breach_start) < rule.for_seconds:
            return None
        state.fired = True
        return Alert(
            rule=rule.name,
            series=series,
            severity=rule.severity,
            t=t,
            value=value,
            threshold=rule.threshold,
            message=rule.description,
        )


def default_rules(
    power_cap_watts: Optional[float] = None,
    fill_ratio: float = FILL_ALERT_RATIO,
    checkpoint_overdue_seconds: Optional[float] = None,
) -> List[WatchRule]:
    """The standard platform rule set.

    Always includes the storage-fill and engine-queue-growth rules; the
    power-cap and checkpoint-overdue rules join only when their limits are
    given (there is nothing to compare against otherwise).
    """
    rules = [
        WatchRule(
            name="storage_fill_high",
            series="repro_timeline_storage_fill_ratio",
            op=">=",
            threshold=fill_ratio,
            severity="warning",
            description="filesystem fill fraction at or above the alert ratio",
        ),
        WatchRule(
            name="ost_fill_high",
            series="repro_timeline_storage_ost*",
            op=">=",
            threshold=fill_ratio,
            severity="warning",
            description="an OST's fill fraction at or above the alert ratio",
        ),
        WatchRule(
            name="engine_queue_growth",
            series="repro_timeline_engine_queue_depth_total",
            kind="growth",
            window=GROWTH_WINDOW,
            severity="warning",
            description=(
                "event-queue depth grew across "
                f"{GROWTH_WINDOW} consecutive samples without draining"
            ),
        ),
    ]
    if power_cap_watts is not None:
        rules.insert(
            0,
            WatchRule(
                name="power_cap_exceeded",
                series="repro_timeline_power_draw_watts",
                op=">",
                threshold=float(power_cap_watts),
                severity="critical",
                description="instantaneous draw above the enforced power cap",
            ),
        )
    if checkpoint_overdue_seconds is not None:
        rules.append(
            WatchRule(
                name="checkpoint_overdue",
                series="repro_timeline_pipeline_checkpoint_age_seconds",
                op=">",
                threshold=float(checkpoint_overdue_seconds),
                severity="warning",
                description="no durable checkpoint within the overdue window",
            )
        )
    return rules


def default_exec_rules(
    retry_storm_threshold: float = EXEC_RETRY_STORM_THRESHOLD,
) -> List[WatchRule]:
    """The supervised-executor rule set (see :mod:`repro.exec.supervise`).

    These watch the ``exec`` incident timeline — one sample per supervision
    incident, at the incident sequence number — so they are exactly as
    deterministic as the failure pattern itself.
    """
    return [
        WatchRule(
            name="exec_worker_crash",
            series="repro_timeline_exec_worker_crashes_total",
            op=">=",
            threshold=1.0,
            severity="critical",
            description=(
                "a pool worker died mid-task; the supervisor respawned the "
                "pool and requeued in-flight work"
            ),
        ),
        WatchRule(
            name="exec_retry_storm",
            series="repro_timeline_exec_retries_total",
            op=">=",
            threshold=float(retry_storm_threshold),
            severity="warning",
            description=(
                "supervised task retries reached the storm threshold "
                f"({retry_storm_threshold:g}); the sweep is thrashing"
            ),
        ),
    ]
