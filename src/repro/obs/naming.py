"""The project's metric naming convention.

Every metric exported by the telemetry layer is named
``repro_<layer>_<name>_<unit>``:

* ``repro`` — fixed prefix, so exposition never collides with host metrics;
* ``<layer>`` — the subsystem that owns the number (``pipeline``, ``power``,
  ``storage``, ``ocean``, ``viz``, ``events``, ...);
* ``<name>`` — one or more lowercase words describing the quantity;
* ``<unit>`` — the unit suffix, restricted to the canonical set below
  (``total`` marks a unitless count, Prometheus-style).

Examples: ``repro_pipeline_phase_seconds``, ``repro_storage_written_bytes``,
``repro_events_processed_total``.  The convention is enforced at runtime by
:class:`~repro.obs.registry.MetricsRegistry` and statically by the
``obs-naming`` lint rule.

Two sibling namespaces ride on the same grammar:

* **timeline series** (:mod:`repro.obs.timeline`) are named
  ``repro_timeline_<layer>_<name>_<unit>`` — the fixed ``timeline`` segment
  keeps sampled series distinguishable from registry metrics, and rates get
  the extra ``bytes_per_second`` unit;
* **alert counters** (:mod:`repro.obs.watch`) are named
  ``repro_alert_<name>_total`` — derived from a snake-case
  :class:`~repro.obs.watch.WatchRule` name.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

__all__ = [
    "ALERT_METRIC_RE",
    "METRIC_NAME_RE",
    "METRIC_UNITS",
    "RULE_NAME_RE",
    "TIMELINE_SERIES_RE",
    "TIMELINE_UNITS",
    "alert_metric_name",
    "validate_metric_name",
    "validate_timeline_series_name",
]

#: Allowed unit suffixes.  ``total`` is the Prometheus idiom for counts.
METRIC_UNITS = ("total", "seconds", "bytes", "watts", "joules", "ratio")

#: Units allowed on timeline series: registry units plus instantaneous rates.
TIMELINE_UNITS = METRIC_UNITS + ("bytes_per_second",)

#: ``repro_<layer>_<name...>_<unit>`` — at least layer + name + unit.
METRIC_NAME_RE = re.compile(
    r"^repro(?:_[a-z][a-z0-9]*){2,}_(?:" + "|".join(METRIC_UNITS) + r")$"
)

#: ``repro_timeline_<layer>_<name...>_<unit>`` for sampled time series.
TIMELINE_SERIES_RE = re.compile(
    r"^repro_timeline(?:_[a-z][a-z0-9]*){2,}_(?:" + "|".join(TIMELINE_UNITS) + r")$"
)

#: ``repro_alert_<name>_total`` for watchdog firing counters.
ALERT_METRIC_RE = re.compile(r"^repro_alert(?:_[a-z][a-z0-9]*)+_total$")

#: Snake-case watch-rule names (what ``repro_alert_<name>_total`` embeds).
RULE_NAME_RE = re.compile(r"^[a-z][a-z0-9]*(?:_[a-z][a-z0-9]*)*$")


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it follows the convention; raise otherwise."""
    if METRIC_NAME_RE.match(name) is None:
        raise ConfigurationError(
            f"metric name {name!r} violates the repro_<layer>_<name>_<unit> "
            f"convention (unit one of {', '.join(METRIC_UNITS)})"
        )
    return name


def validate_timeline_series_name(name: str) -> str:
    """Return ``name`` if it is a valid timeline series name; raise otherwise.

    A trailing ``*`` (a watch-rule prefix selector) is allowed as long as the
    part before it is itself a well-formed series-name prefix.
    """
    candidate = name
    if candidate.endswith("*"):
        # A prefix selector only has to be a syntactically plausible prefix:
        # completing it with a unit suffix must produce a valid series name.
        candidate = candidate[:-1].rstrip("_") + "_probe_value_total"
    if TIMELINE_SERIES_RE.match(candidate) is None:
        raise ConfigurationError(
            f"timeline series {name!r} violates the "
            f"repro_timeline_<layer>_<name>_<unit> convention "
            f"(unit one of {', '.join(TIMELINE_UNITS)})"
        )
    return name


def alert_metric_name(rule_name: str) -> str:
    """The ``repro_alert_<name>_total`` counter for a watch rule."""
    if RULE_NAME_RE.match(rule_name) is None:
        raise ConfigurationError(
            f"watch rule name {rule_name!r} must be snake_case "
            f"([a-z][a-z0-9_]*) so its alert counter is well-formed"
        )
    name = f"repro_alert_{rule_name}_total"
    if ALERT_METRIC_RE.match(name) is None:
        raise ConfigurationError(
            f"derived alert counter {name!r} violates repro_alert_<name>_total"
        )
    return name
