"""The project's metric naming convention.

Every metric exported by the telemetry layer is named
``repro_<layer>_<name>_<unit>``:

* ``repro`` — fixed prefix, so exposition never collides with host metrics;
* ``<layer>`` — the subsystem that owns the number (``pipeline``, ``power``,
  ``storage``, ``ocean``, ``viz``, ``events``, ...);
* ``<name>`` — one or more lowercase words describing the quantity;
* ``<unit>`` — the unit suffix, restricted to the canonical set below
  (``total`` marks a unitless count, Prometheus-style).

Examples: ``repro_pipeline_phase_seconds``, ``repro_storage_written_bytes``,
``repro_events_processed_total``.  The convention is enforced at runtime by
:class:`~repro.obs.registry.MetricsRegistry` and statically by the
``obs-naming`` lint rule.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

__all__ = ["METRIC_NAME_RE", "METRIC_UNITS", "validate_metric_name"]

#: Allowed unit suffixes.  ``total`` is the Prometheus idiom for counts.
METRIC_UNITS = ("total", "seconds", "bytes", "watts", "joules", "ratio")

#: ``repro_<layer>_<name...>_<unit>`` — at least layer + name + unit.
METRIC_NAME_RE = re.compile(
    r"^repro(?:_[a-z][a-z0-9]*){2,}_(?:" + "|".join(METRIC_UNITS) + r")$"
)


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it follows the convention; raise otherwise."""
    if METRIC_NAME_RE.match(name) is None:
        raise ConfigurationError(
            f"metric name {name!r} violates the repro_<layer>_<name>_<unit> "
            f"convention (unit one of {', '.join(METRIC_UNITS)})"
        )
    return name
