"""Continuous resource timelines sampled on the simulation clock.

Spans and end-of-run counters say *how much*; this module says *when*.  A
:class:`TimelineSampler` rides the event engine's step-listener hook and, on
a fixed simulated-time grid, snapshots a set of registered **probes** —
cheap callables reading live gauges out of the engine, the storage model and
the power model — into ring-buffered samples that the telemetry session
appends to a dedicated ``timeline.jsonl`` stream (tagged with the same
``trace_id`` as every other record).

Design constraints, in priority order:

* **Bit-identity off.**  The sampler is only constructed when a session's
  :class:`TimelineConfig` enables it; with sampling off no ``timeline.jsonl``
  is created and ``events.jsonl`` is byte-identical to a pre-timeline run.
* **Determinism on.**  Samples land exactly at grid times ``t0 + k*interval``
  regardless of how simulation events interleave: on every processed event
  the sampler emits one row per grid tick crossed in ``(last, now]``, stamped
  at the *tick* time with the current (post-event) state.  Two seeded runs
  therefore produce byte-identical timelines.
* **Observation only.**  Probes must not mutate simulation state; the
  sampler never schedules events (a timeout-based sampler would keep the
  event heap non-empty forever and break ``sim.run()``).

A :class:`~repro.obs.watch.Watchdog` can be attached; it is evaluated at
every sample and its alerts become ``obs.alert`` events in the main event
stream plus ``repro_alert_<name>_total`` counters.

Series names follow ``repro_timeline_<layer>_<name>_<unit>`` (see
:mod:`repro.obs.naming`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.naming import alert_metric_name, validate_timeline_series_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import TelemetrySession
    from repro.obs.watch import Watchdog

__all__ = [
    "DEFAULT_TIMELINE_POINTS",
    "NODE_BUSY_UTILIZATION",
    "NODE_IDLE_UTILIZATION",
    "TimelineConfig",
    "TimelineSampler",
    "engine_probes",
    "power_probes",
    "resource_probes",
    "storage_probes",
]

#: Default number of grid points across a run when no interval is given:
#: ``interval = duration / DEFAULT_TIMELINE_POINTS``.
DEFAULT_TIMELINE_POINTS = 128

#: Default ring capacity (samples kept in memory per sampler).
DEFAULT_RING_CAPACITY = 4096

#: Node-state bands for the per-state power probes: a node is *busy* at or
#: above this utilization ...
NODE_BUSY_UTILIZATION = 0.9
#: ... *idle* strictly below this one, and *io* in between (the platform's
#: io_wait utilization of 0.85 lands in the io band).
NODE_IDLE_UTILIZATION = 0.05

#: A probe: simulated time in, gauge value out.  Must not mutate state.
Probe = Callable[[float], float]


@dataclass(frozen=True)
class TimelineConfig:
    """Session-level sampling policy, propagated to pool workers via traces."""

    enabled: bool = True
    #: Grid spacing in simulated seconds; ``None`` derives it from the run
    #: duration (``duration / DEFAULT_TIMELINE_POINTS``).
    interval_seconds: Optional[float] = None
    #: In-memory ring capacity per sampler.
    capacity: int = DEFAULT_RING_CAPACITY
    #: Enforced power cap; enables the cap/headroom series and the
    #: ``power_cap_exceeded`` watch rule.
    power_cap_watts: Optional[float] = None
    #: Age beyond which the ``checkpoint_overdue`` watch rule fires.
    checkpoint_overdue_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval_seconds is not None and self.interval_seconds <= 0:
            raise ConfigurationError(
                f"timeline interval must be positive, got {self.interval_seconds}"
            )
        if self.capacity <= 0:
            raise ConfigurationError(
                f"timeline ring capacity must be positive, got {self.capacity}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form (for trace propagation and manifests)."""
        return {
            "enabled": self.enabled,
            "interval_seconds": self.interval_seconds,
            "capacity": self.capacity,
            "power_cap_watts": self.power_cap_watts,
            "checkpoint_overdue_seconds": self.checkpoint_overdue_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimelineConfig":
        return cls(
            enabled=bool(data.get("enabled", True)),
            interval_seconds=data.get("interval_seconds"),
            capacity=int(data.get("capacity", DEFAULT_RING_CAPACITY)),
            power_cap_watts=data.get("power_cap_watts"),
            checkpoint_overdue_seconds=data.get("checkpoint_overdue_seconds"),
        )


class TimelineSampler:
    """Samples registered probes on a fixed simulated-time grid.

    Lifecycle: register probes with :meth:`add_probe`/:meth:`add_probes`,
    :meth:`attach` before the simulation runs, :meth:`detach` after — detach
    takes one final snapshot at the current sim time if the run ended past
    the last grid tick, so the timeline always covers the whole run.
    """

    def __init__(
        self,
        sim,
        interval_seconds: float,
        session: Optional["TelemetrySession"] = None,
        label: str = "run",
        watchdog: Optional["Watchdog"] = None,
        capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        if interval_seconds <= 0:
            raise ConfigurationError(
                f"timeline interval must be positive, got {interval_seconds}"
            )
        self.sim = sim
        self.interval = float(interval_seconds)
        self.session = session
        self.label = label
        self.watchdog = watchdog
        #: Most recent samples, oldest first (ring buffer).
        self.recent: Deque[dict] = deque(maxlen=capacity)
        self.n_samples = 0
        self._probes: List[Tuple[str, Probe]] = []
        self._names: set = set()
        self._next: Optional[float] = None
        self._last_t: Optional[float] = None
        self._attached = False

    # ------------------------------------------------------------- probes

    def add_probe(self, name: str, fn: Probe) -> None:
        """Register one series; names must be unique and convention-clean."""
        validate_timeline_series_name(name)
        if name.endswith("*"):
            raise ConfigurationError(
                f"probe name {name!r} may not be a wildcard selector"
            )
        if name in self._names:
            raise ConfigurationError(f"duplicate timeline probe {name!r}")
        self._names.add(name)
        self._probes.append((name, fn))

    def add_probes(self, probes: Sequence[Tuple[str, Probe]]) -> None:
        """Register a probe-builder's ``(name, fn)`` pairs in order."""
        for name, fn in probes:
            self.add_probe(name, fn)

    @property
    def series_names(self) -> Tuple[str, ...]:
        """Registered series, in registration order."""
        return tuple(name for name, _ in self._probes)

    # ---------------------------------------------------------- lifecycle

    def attach(self) -> None:
        """Start sampling: grid origin is the current simulated time."""
        if self._attached:
            raise ConfigurationError("sampler is already attached")
        self._next = self.sim.now + self.interval
        self._attached = True
        self.sim.add_step_listener(self._on_step)

    def detach(self) -> None:
        """Stop sampling; snapshot the end state if past the last tick."""
        if not self._attached:
            return
        self.sim.remove_step_listener(self._on_step)
        self._attached = False
        if self._last_t is None or self._last_t < self.sim.now:
            self._sample(self.sim.now)

    # ----------------------------------------------------------- sampling

    def _on_step(self, event, now: float) -> None:
        # Emit one row per grid tick crossed by this event, stamped at the
        # tick time with the current (post-event) state.
        while self._next <= now:
            self._sample(self._next)
            self._next += self.interval

    def _sample(self, t: float) -> None:
        values: Dict[str, float] = {}
        for name, fn in self._probes:
            values[name] = float(fn(t))
        record = {
            "type": "sample",
            "t": t,
            "label": self.label,
            "values": {name: values[name] for name in sorted(values)},
        }
        self.recent.append(record)
        self.n_samples += 1
        self._last_t = t
        if self.session is not None:
            self.session.emit_timeline(record)
            self.session.registry.counter(
                "repro_obs_timeline_samples_total", label=self.label
            ).inc()
        if self.watchdog is not None:
            for alert in self.watchdog.observe(t, values):
                self._emit_alert(alert)

    def _emit_alert(self, alert) -> None:
        if self.session is None:
            return
        self.session.event("obs.alert", **alert.to_fields())
        self.session.registry.counter(
            alert_metric_name(alert.rule), severity=alert.severity
        ).inc()


# ------------------------------------------------------------ probe builders
#
# Builders are duck-typed on the simulated objects' public properties so the
# obs layer keeps zero import-time dependencies on the simulation modules.


def engine_probes(sim) -> List[Tuple[str, Probe]]:
    """Live gauges from the event engine: heap, processes, throughput."""
    return [
        ("repro_timeline_engine_queue_depth_total", lambda t: sim.queue_depth),
        ("repro_timeline_engine_processes_total", lambda t: sim.active_processes),
        (
            "repro_timeline_engine_events_processed_total",
            lambda t: sim.events_processed,
        ),
    ]


def storage_probes(fs) -> List[Tuple[str, Probe]]:
    """Lustre gauges: fill fractions, MDS queue, bandwidth in flight."""
    # Per-OST fills come from one namespace scan per sample, shared across
    # the per-OST probes through a tiny (t -> fractions) memo.
    memo: Dict[str, object] = {"t": None, "vals": ()}

    def ost_fraction(index: int) -> Probe:
        def probe(t: float) -> float:
            if memo["t"] != t:
                memo["t"] = t
                memo["vals"] = fs.ost_fill_fractions()
            return memo["vals"][index]

        return probe

    probes: List[Tuple[str, Probe]] = [
        ("repro_timeline_storage_fill_ratio", lambda t: fs.fill_ratio),
        ("repro_timeline_storage_mds_queue_total", lambda t: fs.mds.queue_length),
        (
            "repro_timeline_storage_bandwidth_bytes_per_second",
            lambda t: fs.current_throughput,
        ),
        (
            "repro_timeline_storage_write_utilization_ratio",
            lambda t: fs.write_pipe.utilization,
        ),
        (
            "repro_timeline_storage_read_utilization_ratio",
            lambda t: fs.read_pipe.utilization,
        ),
    ]
    for i in range(len(fs.osts)):
        probes.append((f"repro_timeline_storage_ost{i}_fill_ratio", ost_fraction(i)))
    return probes


def power_probes(
    meter,
    cluster,
    storage=None,
    cap_watts: Optional[float] = None,
) -> List[Tuple[str, Probe]]:
    """Power gauges: draw vs cap, headroom, per-state node counts."""

    def nodes_in_band(lo: float, hi: Optional[float]) -> Probe:
        # Band is [lo, hi); the busy band passes hi=None for an open top.
        def probe(t: float) -> float:
            count = 0
            for node in cluster.nodes:
                u = node.utilization
                if u >= lo and (hi is None or u < hi):
                    count += 1
            return float(count)

        return probe

    probes: List[Tuple[str, Probe]] = [
        ("repro_timeline_power_draw_watts", lambda t: meter.total_watts(t)),
        ("repro_timeline_power_compute_watts", lambda t: cluster.current_power),
    ]
    if storage is not None:
        probes.append(
            ("repro_timeline_power_storage_watts", lambda t: storage.current_power)
        )
    if cap_watts is not None:
        cap = float(cap_watts)
        probes.append(("repro_timeline_power_cap_watts", lambda t: cap))
        probes.append(
            (
                "repro_timeline_power_headroom_watts",
                lambda t: cap - meter.total_watts(t),
            )
        )
    probes.extend(
        [
            (
                "repro_timeline_power_nodes_busy_total",
                nodes_in_band(NODE_BUSY_UTILIZATION, None),
            ),
            (
                "repro_timeline_power_nodes_io_total",
                nodes_in_band(NODE_IDLE_UTILIZATION, NODE_BUSY_UTILIZATION),
            ),
            (
                "repro_timeline_power_nodes_idle_total",
                nodes_in_band(0.0, NODE_IDLE_UTILIZATION),
            ),
        ]
    )
    return probes


def resource_probes(name: str, resource) -> List[Tuple[str, Probe]]:
    """Occupancy/queue gauges for one named :class:`~repro.events.resources.Resource`."""
    return [
        (f"repro_timeline_resource_{name}_in_use_total", lambda t: resource.in_use),
        (f"repro_timeline_resource_{name}_queue_total", lambda t: resource.queue_length),
        (
            f"repro_timeline_resource_{name}_utilization_ratio",
            lambda t: resource.utilization,
        ),
    ]
