"""repro.obs — the unified telemetry layer.

Zero-dependency observability for every layer of the reproduction:

* **Spans** (:func:`span`) — nested wall-clock *or* simulated-time phase
  timings with attributes, usable as context managers or decorators.
* **Metrics** (:class:`MetricsRegistry`, :func:`counter` / :func:`gauge` /
  :func:`observe`) — process-wide counters, gauges and fixed-bucket
  histograms named ``repro_<layer>_<name>_<unit>``, with snapshot/reset.
* **Exporters** — JSONL event streams, Prometheus text exposition, and the
  per-run :class:`RunManifest` (config, durations, metric snapshot,
  provenance) written next to benchmark results.

Everything is a no-op until a :func:`session` is active, so instrumented
code paths are bit-identical with telemetry disabled.  See the README's
"Observability" section and ``examples/telemetry_demo.py``.
"""

from __future__ import annotations

from repro.obs.exporters import JsonlWriter, read_jsonl, to_prometheus, write_prometheus
from repro.obs.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    PROM_FILENAME,
    RunManifest,
    collect_provenance,
)
from repro.obs.naming import METRIC_NAME_RE, METRIC_UNITS, validate_metric_name
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.telemetry import (
    PHASE_SECONDS_METRIC,
    SHARDS_DIRNAME,
    SIM,
    WALL,
    Span,
    TelemetrySession,
    active,
    counter,
    enabled,
    event,
    gauge,
    observe,
    phase,
    session,
    shard_session,
    span,
)
from repro.obs.trace import TraceContext, derive_trace_id

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENTS_FILENAME",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MANIFEST_FILENAME",
    "METRIC_NAME_RE",
    "METRIC_UNITS",
    "MetricsRegistry",
    "PHASE_SECONDS_METRIC",
    "PROM_FILENAME",
    "RunManifest",
    "SHARDS_DIRNAME",
    "SIM",
    "Span",
    "TelemetrySession",
    "TraceContext",
    "WALL",
    "active",
    "collect_provenance",
    "counter",
    "default_registry",
    "derive_trace_id",
    "enabled",
    "event",
    "gauge",
    "observe",
    "phase",
    "read_jsonl",
    "session",
    "shard_session",
    "span",
    "to_prometheus",
    "validate_metric_name",
    "write_prometheus",
]
