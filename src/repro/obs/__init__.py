"""repro.obs — the unified telemetry layer.

Zero-dependency observability for every layer of the reproduction:

* **Spans** (:func:`span`) — nested wall-clock *or* simulated-time phase
  timings with attributes, usable as context managers or decorators.
* **Metrics** (:class:`MetricsRegistry`, :func:`counter` / :func:`gauge` /
  :func:`observe`) — process-wide counters, gauges and fixed-bucket
  histograms named ``repro_<layer>_<name>_<unit>``, with snapshot/reset.
* **Exporters** — JSONL event streams, Prometheus text exposition, and the
  per-run :class:`RunManifest` (config, durations, metric snapshot,
  provenance) written next to benchmark results.
* **Timelines** (:class:`TimelineSampler`, :class:`TimelineConfig`) —
  sim-clock-gridded snapshots of live engine/storage/power gauges into a
  ring-buffered ``timeline.jsonl`` stream.
* **Watchdogs** (:class:`WatchRule`, :class:`Watchdog`) — declarative SLO
  rules evaluated at every timeline sample, emitting ``obs.alert`` events
  and ``repro_alert_<name>_total`` counters.

Everything is a no-op until a :func:`session` is active, so instrumented
code paths are bit-identical with telemetry disabled.  See
``docs/OBSERVABILITY.md`` and ``examples/telemetry_demo.py``.
"""

from __future__ import annotations

from repro.obs.drift import DriftCheck, check_value, mad_band
from repro.obs.exporters import JsonlWriter, read_jsonl, to_prometheus, write_prometheus
from repro.obs.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    PROM_FILENAME,
    TIMELINE_FILENAME,
    RunManifest,
    collect_provenance,
)
from repro.obs.naming import (
    ALERT_METRIC_RE,
    METRIC_NAME_RE,
    METRIC_UNITS,
    TIMELINE_SERIES_RE,
    TIMELINE_UNITS,
    alert_metric_name,
    validate_metric_name,
    validate_timeline_series_name,
)
from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    default_registry,
)
from repro.obs.telemetry import (
    PHASE_SECONDS_METRIC,
    SHARDS_DIRNAME,
    SIM,
    WALL,
    Span,
    TelemetrySession,
    active,
    counter,
    enabled,
    event,
    gauge,
    observe,
    phase,
    session,
    shard_session,
    span,
)
from repro.obs.timeline import (
    DEFAULT_TIMELINE_POINTS,
    TimelineConfig,
    TimelineSampler,
    engine_probes,
    power_probes,
    resource_probes,
    storage_probes,
)
from repro.obs.trace import TraceContext, derive_trace_id
from repro.obs.watch import (
    SEVERITIES,
    Alert,
    WatchRule,
    Watchdog,
    default_rules,
    severity_rank,
)

__all__ = [
    "ALERT_METRIC_RE",
    "Alert",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_TIMELINE_POINTS",
    "DriftCheck",
    "EVENTS_FILENAME",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MANIFEST_FILENAME",
    "METRIC_NAME_RE",
    "METRIC_UNITS",
    "MetricsRegistry",
    "PHASE_SECONDS_METRIC",
    "PROM_FILENAME",
    "RunManifest",
    "SEVERITIES",
    "SHARDS_DIRNAME",
    "SIM",
    "Span",
    "TIMELINE_FILENAME",
    "TIMELINE_SERIES_RE",
    "TIMELINE_UNITS",
    "TelemetrySession",
    "TimelineConfig",
    "TimelineSampler",
    "TraceContext",
    "WALL",
    "WatchRule",
    "Watchdog",
    "active",
    "alert_metric_name",
    "bucket_quantile",
    "check_value",
    "collect_provenance",
    "counter",
    "default_registry",
    "default_rules",
    "derive_trace_id",
    "enabled",
    "engine_probes",
    "event",
    "gauge",
    "mad_band",
    "observe",
    "phase",
    "power_probes",
    "read_jsonl",
    "resource_probes",
    "session",
    "severity_rank",
    "shard_session",
    "span",
    "storage_probes",
    "to_prometheus",
    "validate_metric_name",
    "validate_timeline_series_name",
    "write_prometheus",
]
