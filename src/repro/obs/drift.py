"""The shared MAD-band drift detector.

Both longitudinal gates in the project — the bench trajectory ledger
(:mod:`repro.exec.history`) and the cross-run metric trends of the run
registry (:mod:`repro.obs.store.trend`) — answer the same question: *is
this value an outlier against the recent history of comparable values?*
The answer lives here so the two gates cannot diverge.

The reference band around the history is ``median ± halfwidth`` with

``halfwidth = max(mad_k * 1.4826 * MAD, rel_floor * |median|)``

— the ``1.4826`` factor makes the MAD a consistent sigma estimator under
normal noise, and the relative floor keeps near-constant histories (MAD
~ 0) from flagging ordinary jitter.  Drift is directional: wall times and
energy fail *above* the band, speedups fail *below* it; the opposite
direction is improvement, not drift.  Histories shorter than
``min_records`` produce no verdict at all, so a fresh ledger or store
never blocks a gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_MAD_K",
    "DEFAULT_MIN_RECORDS",
    "DEFAULT_REL_FLOOR",
    "DIRECTIONS",
    "DriftCheck",
    "MAD_SCALE",
    "check_value",
    "mad_band",
    "median",
]

#: MAD -> sigma consistency factor for normally distributed noise.
MAD_SCALE = 1.4826

#: Band half-width in (consistency-scaled) MAD units.
DEFAULT_MAD_K = 4.0

#: Relative floor on the band half-width, as a fraction of |median|.
DEFAULT_REL_FLOOR = 0.25

#: Below this many history values there is no trajectory to drift from.
DEFAULT_MIN_RECORDS = 3

#: Which side of the band counts as failure.  ``"above"`` suits costs
#: (seconds, joules, bytes), ``"below"`` suits rates and speedups,
#: ``"both"`` treats any departure from the band as drift.
DIRECTIONS = ("above", "below", "both")


def median(values: Sequence[float]) -> float:
    """The sample median (mean of the middle pair for even lengths)."""
    if not values:
        raise ConfigurationError("median of an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad_band(
    values: Sequence[float],
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> Tuple[float, float]:
    """``(median, halfwidth)`` of the tolerance band around ``values``."""
    if mad_k <= 0 or rel_floor < 0:
        raise ConfigurationError(
            f"mad_k must be > 0 and rel_floor >= 0: {mad_k}, {rel_floor}"
        )
    med = median(values)
    mad = median([abs(v - med) for v in values])
    return med, max(mad_k * MAD_SCALE * mad, rel_floor * abs(med))


@dataclass(frozen=True)
class DriftCheck:
    """One metric's verdict against its trajectory band."""

    metric: str
    value: float
    median: float
    halfwidth: float
    n: int
    direction: str  # which side of the band counts as failure
    failed: bool

    def describe(self) -> str:
        """One human-readable line."""
        edge = (
            self.median + self.halfwidth
            if self.direction == "above"
            else self.median - self.halfwidth
        )
        verdict = "DRIFT" if self.failed else "ok"
        return (
            f"{self.metric:18s} {self.value:10.3f} vs median {self.median:10.3f} "
            f"(n={self.n}, {self.direction}-edge {edge:10.3f})  {verdict}"
        )

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "metric": self.metric,
            "value": self.value,
            "median": self.median,
            "halfwidth": self.halfwidth,
            "n": self.n,
            "direction": self.direction,
            "failed": self.failed,
        }


def check_value(
    metric: str,
    value: float,
    history: Sequence[float],
    direction: str = "above",
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_records: int = DEFAULT_MIN_RECORDS,
) -> Optional[DriftCheck]:
    """The drift verdict for ``value`` against ``history``.

    ``None`` means "no trajectory yet" (fewer than ``min_records`` history
    values) — callers must treat that as an informational pass.
    """
    if direction not in DIRECTIONS:
        raise ConfigurationError(
            f"unknown drift direction {direction!r}; expected one of {DIRECTIONS}"
        )
    series: List[float] = [float(v) for v in history]
    if len(series) < min_records:
        return None
    med, halfwidth = mad_band(series, mad_k=mad_k, rel_floor=rel_floor)
    value = float(value)
    above = value > med + halfwidth
    below = value < med - halfwidth
    if direction == "above":
        failed = above
    elif direction == "below":
        failed = below
    else:
        failed = above or below
    return DriftCheck(
        metric=metric,
        value=value,
        median=med,
        halfwidth=halfwidth,
        n=len(series),
        direction=direction,
        failed=failed,
    )
