"""Self-contained HTML report for a telemetry run.

``repro obs report DIR`` renders one static HTML file (inline CSS, inline
SVG, zero external assets — safe to attach as a CI artifact) with:

* the run header (label, trace id, provenance),
* a phase timeline per profiled run — an SVG bar lane showing when each
  simulation/viz/io phase occupied the run window,
* the per-span energy table from :mod:`repro.obs.profile` (joules, share,
  bytes written), aggregated by span name,
* one sparkline strip per ``timeline.jsonl`` series with watchdog alert
  markers (red ticks at each ``obs.alert``),
* an optional regression-diff summary against ``--baseline``.
"""

from __future__ import annotations

import html
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.exporters import read_jsonl
from repro.obs.manifest import EVENTS_FILENAME, TIMELINE_FILENAME, RunManifest
from repro.obs.profile import ProfileResult, RootProfile, profile_directory

__all__ = ["render_html", "write_report"]

DEFAULT_REPORT_FILENAME = "report.html"

_PALETTE = ("#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2")

_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 62rem;
       color: #1a1a2e; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #ddd; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.meta { color: #555; } .bad { color: #c0392b; } .ok { color: #27ae60; }
svg { display: block; margin: .4rem 0 1rem; }
.legend span { display: inline-block; margin-right: 1rem; }
.legend i { display: inline-block; width: .8rem; height: .8rem;
            margin-right: .3rem; border-radius: 2px; }
.spark { margin: .6rem 0; }
.spark svg { margin: .1rem 0 0; }
.sparklabel { font-size: .85rem; font-family: ui-monospace, monospace; }
"""

_ALERT_COLORS = {"info": "#4e79a7", "warning": "#f28e2b", "critical": "#c0392b"}


def _esc(value: object) -> str:
    return html.escape(str(value))


def _fmt_j(joules: Optional[float]) -> str:
    if joules is None:
        return "n/a"
    if abs(joules) >= 1e6:
        return f"{joules / 1e6:.2f} MJ"
    if abs(joules) >= 1e3:
        return f"{joules / 1e3:.2f} kJ"
    return f"{joules:.1f} J"


def _fmt_b(nbytes: float) -> str:
    if nbytes >= 1e9:
        return f"{nbytes / 1e9:.2f} GB"
    if nbytes >= 1e6:
        return f"{nbytes / 1e6:.2f} MB"
    return f"{nbytes:.0f} B"


def _phase_colors(rp: RootProfile) -> Dict[str, str]:
    names: List[str] = []
    for child in rp.root.children:
        if child.name not in names:
            names.append(child.name)
    return {n: _PALETTE[i % len(_PALETTE)] for i, n in enumerate(names)}


def _timeline_svg(rp: RootProfile, width: int = 920, height: int = 42) -> str:
    """One SVG lane: each direct child drawn over the run window."""
    span = rp.root.duration or 1.0
    colors = _phase_colors(rp)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="phase timeline {_esc(rp.title)}">',
        f'<rect x="0" y="12" width="{width}" height="22" fill="#eee"/>',
    ]
    for child in rp.root.children:
        x = width * (child.t0 - rp.root.t0) / span
        w = max(width * child.duration / span, 0.5)
        color = colors.get(child.name, "#888")
        title = (
            f"{child.name}: {child.duration:.2f} s, {_fmt_j(child.joules)}"
        )
        parts.append(
            f'<rect x="{x:.2f}" y="12" width="{w:.2f}" height="22" '
            f'fill="{color}"><title>{_esc(title)}</title></rect>'
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span><i style="background:{color}"></i>{_esc(name)}</span>'
        for name, color in colors.items()
    )
    return "".join(parts) + f'<div class="legend">{legend}</div>'


def _span_table(rp: RootProfile) -> str:
    """Direct children aggregated by name: count, seconds, joules, bytes."""
    rows: Dict[str, List[float]] = {}
    for child in rp.root.children:
        entry = rows.setdefault(child.name, [0, 0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += child.duration
        entry[2] += child.joules or 0.0
        entry[3] += child.bytes_written
    self_j = rp.root.self_joules()
    total = rp.root.joules
    out = [
        "<table><tr><th>span</th><th class=num>count</th>"
        "<th class=num>seconds</th><th class=num>energy</th>"
        "<th class=num>share</th><th class=num>written</th></tr>"
    ]
    for name, (count, secs, joules, written) in sorted(
        rows.items(), key=lambda kv: -kv[1][2]
    ):
        share = f"{100 * joules / total:.1f}%" if total else "—"
        out.append(
            f"<tr><td>{_esc(name)}</td><td class=num>{int(count)}</td>"
            f"<td class=num>{secs:.1f}</td><td class=num>{_fmt_j(joules)}</td>"
            f"<td class=num>{share}</td><td class=num>{_fmt_b(written)}</td></tr>"
        )
    if total is not None and self_j is not None:
        share = f"{100 * self_j / total:.1f}%" if total else "—"
        out.append(
            f"<tr><td class=meta>(self)</td><td class=num></td>"
            f"<td class=num></td><td class=num>{_fmt_j(self_j)}</td>"
            f"<td class=num>{share}</td><td class=num></td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def _sparkline(
    name: str,
    points: Sequence[Tuple[float, float]],
    alerts: Sequence[dict],
    width: int = 920,
    height: int = 26,
) -> str:
    """One series as an inline polyline strip with alert tick marks."""
    times = [t for t, _ in points]
    t0, t1 = min(times), max(times)
    t_span = (t1 - t0) or 1.0
    values = [v for _, v in points]
    vmin, vmax = min(values), max(values)
    v_span = (vmax - vmin) or 1.0
    pad = 3.0

    def x_of(t: float) -> float:
        return width * (t - t0) / t_span

    def y_of(v: float) -> float:
        return pad + (height - 2 * pad) * (1.0 - (v - vmin) / v_span)

    # One session can hold several runs whose sim clocks each start at 0;
    # split where t jumps backwards so the traces overlay instead of
    # connecting end-to-start.
    segments: List[List[Tuple[float, float]]] = [[points[0]]]
    for prev, cur in zip(points, points[1:]):
        if cur[0] < prev[0]:
            segments.append([])
        segments[-1].append(cur)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="timeline {_esc(name)}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#f6f6f8"/>',
    ]
    for segment in segments:
        poly = " ".join(f"{x_of(t):.1f},{y_of(v):.1f}" for t, v in segment)
        parts.append(
            f'<polyline points="{poly}" fill="none" stroke="#4e79a7" '
            f'stroke-width="1.2"/>'
        )
    for alert in alerts:
        t = float(alert.get("t", t0))
        color = _ALERT_COLORS.get(str(alert.get("severity", "")), "#c0392b")
        title = (
            f"{alert.get('rule', '?')} ({alert.get('severity', '?')}): "
            f"value {alert.get('value', '?')} at t={t:g}"
        )
        parts.append(
            f'<line x1="{x_of(t):.1f}" y1="0" x2="{x_of(t):.1f}" '
            f'y2="{height}" stroke="{color}" stroke-width="1.6">'
            f"<title>{_esc(title)}</title></line>"
        )
    parts.append("</svg>")
    label = (
        f'<div class=sparklabel>{_esc(name)} <span class=meta>'
        f"min {vmin:g} · max {vmax:g} · last {values[-1]:g}"
        + (f" · {len(alerts)} alert(s)" if alerts else "")
        + "</span></div>"
    )
    return f'<div class=spark>{label}{"".join(parts)}</div>'


def _timeline_section(directory: str) -> str:
    """Sparkline strips for every timeline series, or '' without a timeline."""
    path = os.path.join(directory, TIMELINE_FILENAME)
    if not os.path.exists(path):
        return ""
    samples = [r for r in read_jsonl(path) if r.get("type") == "sample"]
    if not samples:
        return ""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for record in samples:
        t = float(record.get("t", 0.0))
        for name, value in (record.get("values") or {}).items():
            series.setdefault(str(name), []).append((t, float(value)))

    from repro.obs.cli import collect_alerts

    events_path = os.path.join(directory, EVENTS_FILENAME)
    alerts = (
        collect_alerts(list(read_jsonl(events_path)))
        if os.path.exists(events_path)
        else []
    )
    by_series: Dict[str, List[dict]] = {}
    for alert in alerts:
        by_series.setdefault(str(alert.get("series", "")), []).append(alert)

    out = [
        f"<h2>Timeline — {len(samples)} samples, {len(series)} series"
        + (f", {len(alerts)} alert(s)" if alerts else "")
        + "</h2>"
    ]
    for name in sorted(series):
        out.append(_sparkline(name, series[name], by_series.get(name, ())))
    return "".join(out)


def _diff_section(directory: str, baseline: str, threshold: float) -> str:
    from repro.obs.diff import diff_paths, render_diff

    result = diff_paths(baseline, directory)
    bad = result.exceeding(threshold)
    verdict = (
        f'<p class=bad>{len(bad)} metric(s) moved beyond '
        f"&plusmn;{100 * threshold:g}% vs the baseline.</p>"
        if bad
        else f'<p class=ok>All shared metrics within '
        f"&plusmn;{100 * threshold:g}% of the baseline.</p>"
    )
    return (
        f"<h2>Diff vs {_esc(os.path.basename(baseline) or baseline)}</h2>"
        + verdict
        + f"<pre>{_esc(render_diff(result, threshold, show_all=not bad))}</pre>"
    )


def render_html(
    directory: str,
    baseline: Optional[str] = None,
    threshold: float = 0.2,
    profile: Optional[ProfileResult] = None,
) -> str:
    """The full HTML document for one telemetry directory."""
    manifest = RunManifest.load(directory)
    if profile is None:
        profile = profile_directory(directory)

    body = [
        f"<h1>repro run {_esc(manifest.label)}</h1>",
        f'<p class=meta>run {_esc(manifest.run_id)} · trace '
        f"{_esc(manifest.trace_id or profile.trace_id or 'n/a')} · "
        f"{manifest.n_events} events · repro "
        f"{_esc(manifest.provenance.get('repro_version', '?'))}</p>",
    ]
    problems = profile.conservation_errors()
    if problems:
        body.append(
            '<p class=bad>energy conservation violated:<br>'
            + "<br>".join(_esc(p) for p in problems)
            + "</p>"
        )
    for rp in profile.roots:
        body.append(
            f"<h2>{_esc(rp.title)} — {rp.root.duration:.1f} s, "
            f"{_fmt_j(rp.root.joules)}</h2>"
        )
        body.append(_timeline_svg(rp))
        body.append(_span_table(rp))
    if manifest.durations:
        body.append("<h2>Phase totals</h2><table>"
                    "<tr><th>phase</th><th class=num>seconds</th></tr>")
        for name, seconds in sorted(
            manifest.durations.items(), key=lambda kv: -kv[1]
        ):
            body.append(
                f"<tr><td>{_esc(name)}</td><td class=num>{seconds:.2f}</td></tr>"
            )
        body.append("</table>")
    body.append(_timeline_section(directory))
    if baseline is not None:
        body.append(_diff_section(directory, baseline, threshold))
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>repro run {_esc(manifest.label)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )


def write_report(
    directory: str,
    output: Optional[str] = None,
    baseline: Optional[str] = None,
    threshold: float = 0.2,
) -> str:
    """Render and write the report; returns the output path."""
    path = output or os.path.join(directory, DEFAULT_REPORT_FILENAME)
    doc = render_html(directory, baseline=baseline, threshold=threshold)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(doc)
    return path
