"""Per-run manifests: what ran, how long each phase took, and where.

A :class:`RunManifest` is the durable record a telemetry session leaves next
to its benchmark results: the exact configuration, per-phase duration
totals, a full metric snapshot, and provenance (git commit, library
version, python/platform, seeds found in the config).  It is plain JSON so
any downstream tool — or ``repro obs summarize`` — can round-trip it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "PROM_FILENAME",
    "RunManifest",
    "SCHEMA_VERSION",
    "TIMELINE_FILENAME",
    "collect_provenance",
]

#: File names a session writes inside its telemetry directory.
MANIFEST_FILENAME = "manifest.json"
EVENTS_FILENAME = "events.jsonl"
PROM_FILENAME = "metrics.prom"
#: Sampled time series (present only when timeline sampling is enabled).
TIMELINE_FILENAME = "timeline.jsonl"

#: Bump when the manifest layout changes incompatibly.
SCHEMA_VERSION = 1


def _git_commit() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def collect_provenance(config: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Best-effort provenance: versions, platform, git commit, seeds.

    Any key of ``config`` containing ``seed`` is copied through, so run
    manifests record the RNG state that produced their results.
    """
    from repro import __version__

    out: Dict[str, Any] = {
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "git_commit": _git_commit(),
    }
    seeds = {
        k: v for k, v in (config or {}).items() if "seed" in k.lower()
    }
    if seeds:
        out["seeds"] = seeds
    return out


@dataclass
class RunManifest:
    """Everything recorded about one telemetry session."""

    label: str
    run_id: str
    created_unix: float
    argv: List[str] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)
    #: Per-phase duration totals in seconds (``{"simulation": 1210.4, ...}``).
    durations: Dict[str, float] = field(default_factory=dict)
    #: Metric snapshot (see :meth:`MetricsRegistry.snapshot`).
    metrics: Dict[str, Any] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    n_events: int = 0
    events_file: str = EVENTS_FILENAME
    #: Timeline samples emitted (0 when sampling was off — no timeline file).
    n_timeline: int = 0
    schema_version: int = SCHEMA_VERSION
    #: Deterministic trace id shared by every record (and worker shard) of
    #: the session; ``None`` only for manifests predating tracing.
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The manifest as a JSON-safe dict."""
        return {
            "schema_version": self.schema_version,
            "label": self.label,
            "run_id": self.run_id,
            "created_unix": self.created_unix,
            "argv": list(self.argv),
            "config": dict(self.config),
            "durations": dict(self.durations),
            "metrics": self.metrics,
            "provenance": dict(self.provenance),
            "n_events": self.n_events,
            "events_file": self.events_file,
            "n_timeline": self.n_timeline,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output."""
        try:
            return cls(
                label=data["label"],
                run_id=data["run_id"],
                created_unix=float(data["created_unix"]),
                argv=list(data.get("argv", [])),
                config=dict(data.get("config", {})),
                durations={k: float(v) for k, v in data.get("durations", {}).items()},
                metrics=dict(data.get("metrics", {})),
                provenance=dict(data.get("provenance", {})),
                n_events=int(data.get("n_events", 0)),
                events_file=data.get("events_file", EVENTS_FILENAME),
                n_timeline=int(data.get("n_timeline", 0)),
                schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
                trace_id=data.get("trace_id"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed run manifest: {exc}") from exc

    def write(self, directory: str) -> str:
        """Write ``manifest.json`` into ``directory`` atomically.

        Write-to-temp + ``os.replace``: a crash mid-write leaves the old
        manifest (or none), never a torn one that breaks every later
        ``summarize`` / ``report`` over the directory.
        """
        from repro.atomicio import atomic_write_json

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, MANIFEST_FILENAME)
        atomic_write_json(path, self.to_dict())
        return path

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Load from a manifest file or a directory containing one."""
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_FILENAME)
        if not os.path.exists(path):
            raise ConfigurationError(f"no run manifest at {path!r}")
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
