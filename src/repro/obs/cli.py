"""The ``repro obs`` subcommand: inspect telemetry directories.

* ``repro obs summarize PATH`` — round-trip a run's ``manifest.json`` +
  ``events.jsonl`` and print the human summary (phases, spans, metrics,
  timeline coverage, alerts, provenance).
* ``repro obs dump PATH`` — stream the raw JSONL records to stdout.
* ``repro obs diff BASELINE CANDIDATE`` — per-metric relative deltas of two
  manifests (or any numeric JSON, e.g. BENCH reports); exit 3 beyond
  ``--threshold`` (see :mod:`repro.obs.diff`).
* ``repro obs report DIR`` — one self-contained HTML file: phase timeline,
  per-span energy table, timeline sparklines with alert markers, optional
  diff summary (see :mod:`repro.obs.report`).
* ``repro obs check PATH`` — gate on watchdog alerts: exit 2 when the run
  recorded any ``obs.alert`` at or above ``--min-severity``.

``PATH`` may be the telemetry directory, the manifest file, or the events
file; the other artifacts are found beside it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro import obs as _obs
from repro.errors import ConfigurationError, ReproError
from repro.obs.exporters import read_jsonl
from repro.obs.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    TIMELINE_FILENAME,
    RunManifest,
)
from repro.obs.watch import SEVERITIES, severity_rank

__all__ = [
    "build_parser",
    "collect_alerts",
    "main",
    "resolve_directory",
    "summarize",
]

#: Record types the summary knows how to roll up.
_KNOWN_RECORD_TYPES = ("span", "phase", "event", "sample")


def resolve_directory(path: str) -> str:
    """The telemetry directory designated by ``path`` (dir or member file)."""
    if os.path.isdir(path):
        return path
    if os.path.basename(path) in (MANIFEST_FILENAME, EVENTS_FILENAME):
        return os.path.dirname(path) or "."
    raise ConfigurationError(
        f"{path!r} is not a telemetry directory, {MANIFEST_FILENAME} "
        f"or {EVENTS_FILENAME}"
    )


def _load_events(directory: str) -> List[dict]:
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        return []
    return list(read_jsonl(events_path))


def _span_rollup(events: Sequence[dict]) -> Dict[str, List[float]]:
    """``{name: [count, total_duration]}`` over span/phase records."""
    rollup: Dict[str, List[float]] = {}
    for record in events:
        if record.get("type") not in ("span", "phase"):
            continue
        entry = rollup.setdefault(record["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += float(record.get("dur", 0.0))
    return rollup


def _unknown_kinds(events: Sequence[dict]) -> Dict[str, int]:
    """Counts of record types the summary does not understand.

    Each sighting also increments ``repro_obs_unknown_records_total`` (a
    no-op outside a session, same idiom as the truncation counter) so an
    instrumented caller sees schema drift in its metrics, not just stderr.
    """
    unknown: Dict[str, int] = {}
    for record in events:
        kind = str(record.get("type"))
        if kind in _KNOWN_RECORD_TYPES:
            continue
        unknown[kind] = unknown.get(kind, 0) + 1
        # Straight to the default registry: summarize runs outside any
        # session, where the no-op `obs.counter` helper would drop the count.
        _obs.default_registry().counter(
            "repro_obs_unknown_records_total", kind=kind
        ).inc()
    return unknown


def collect_alerts(events: Sequence[dict]) -> List[dict]:
    """The ``obs.alert`` payloads of an event stream, in emission order."""
    alerts = []
    for record in events:
        if record.get("type") == "event" and record.get("name") == "obs.alert":
            alerts.append(dict(record.get("fields") or {}))
    return alerts


def _load_timeline(directory: str) -> List[dict]:
    path = os.path.join(directory, TIMELINE_FILENAME)
    if not os.path.exists(path):
        return []
    return list(read_jsonl(path))


def _timeline_lines(samples: Sequence[dict]) -> List[str]:
    if not samples:
        return []
    series: set = set()
    for sample in samples:
        series.update((sample.get("values") or {}).keys())
    t0 = float(samples[0].get("t", 0.0))
    t1 = float(samples[-1].get("t", 0.0))
    return [
        f"timeline: {len(samples)} samples across {len(series)} series "
        f"(t = {t0:g} .. {t1:g} s)"
    ]


def _alert_lines(alerts: Sequence[dict]) -> List[str]:
    if not alerts:
        return []
    by_severity: Dict[str, int] = {}
    for alert in alerts:
        severity = str(alert.get("severity", "warning"))
        by_severity[severity] = by_severity.get(severity, 0) + 1
    ordered = ", ".join(
        f"{sev}: {by_severity[sev]}"
        for sev in reversed(SEVERITIES)
        if sev in by_severity
    )
    lines = [f"alerts: {len(alerts)} ({ordered})"]
    seen: set = set()
    for alert in alerts:
        key = (alert.get("rule"), alert.get("series"))
        if key in seen:
            continue
        seen.add(key)
        lines.append(
            f"  [{alert.get('severity', '?'):8s}] {alert.get('rule', '?')} "
            f"on {alert.get('series', '?')} at t={float(alert.get('t', 0.0)):g} "
            f"(value {float(alert.get('value', 0.0)):g} vs "
            f"{float(alert.get('threshold', 0.0)):g})"
        )
    return lines


def _metric_lines(manifest: RunManifest) -> List[str]:
    lines = []
    for name in sorted(manifest.metrics):
        family = manifest.metrics[name]
        for series in family.get("series", []):
            labels = series.get("labels", {})
            rendered = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if family.get("kind") == "histogram":
                lines.append(
                    f"  {name}{rendered} count={series.get('count', 0)} "
                    f"sum={series.get('sum', 0.0):g}"
                )
            else:
                lines.append(f"  {name}{rendered} {series.get('value', 0.0):g}")
    return lines


def summarize(path: str) -> str:
    """The human-readable summary of one telemetry directory."""
    directory = resolve_directory(path)
    manifest = RunManifest.load(directory)
    events = _load_events(directory)

    created = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(manifest.created_unix)
    )
    lines = [
        f"run {manifest.label!r} ({manifest.run_id})",
        f"created {created}   schema v{manifest.schema_version}   "
        f"{manifest.n_events} events",
    ]
    if manifest.argv:
        lines.append("argv: " + " ".join(manifest.argv))
    scenario = manifest.config.get("scenario")
    if isinstance(scenario, dict) and scenario.get("digest"):
        lines.append(
            f"scenario: {scenario.get('name', '?')} "
            f"(digest {str(scenario['digest'])[:12]})"
        )
    prov = manifest.provenance
    if prov:
        commit = prov.get("git_commit")
        lines.append(
            "provenance: repro "
            f"{prov.get('repro_version', '?')}, python {prov.get('python', '?')}, "
            f"commit {commit[:12] if commit else 'n/a'}"
        )

    if manifest.durations:
        total = sum(manifest.durations.values())
        lines.append("phase totals:")
        for name, seconds in sorted(
            manifest.durations.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {name:14s} {seconds:12.2f} s  {share:5.1f}%")

    rollup = _span_rollup(events)
    if rollup:
        lines.append(f"spans/phases: {sum(int(v[0]) for v in rollup.values())} "
                     f"records across {len(rollup)} names")
        for name, (count, dur) in sorted(rollup.items(), key=lambda kv: -kv[1][1])[:10]:
            lines.append(f"  {name:24s} x{int(count):<6d} {dur:12.2f} s")

    lines.extend(_timeline_lines(_load_timeline(directory)))
    lines.extend(_alert_lines(collect_alerts(events)))

    metric_lines = _metric_lines(manifest)
    if metric_lines:
        lines.append(f"metrics: {len(manifest.metrics)} families")
        lines.extend(metric_lines)

    unknown = _unknown_kinds(events)
    if unknown:
        kinds = ", ".join(f"{k} (x{unknown[k]})" for k in sorted(unknown))
        lines.append(
            f"ignored {sum(unknown.values())} record(s) of unknown kind: {kinds}"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro obs``."""
    parser = argparse.ArgumentParser(
        prog="repro obs", description="inspect telemetry run directories"
    )
    sub = parser.add_subparsers(dest="action", required=True)

    p = sub.add_parser("summarize", help="print the human run summary")
    p.add_argument(
        "path", help="telemetry directory (or its manifest/events file)"
    )

    p = sub.add_parser("dump", help="stream the raw JSONL records to stdout")
    p.add_argument(
        "path", help="telemetry directory (or its manifest/events file)"
    )
    p.add_argument(
        "--limit", type=int, default=None,
        help="print at most this many records",
    )

    p = sub.add_parser(
        "diff", help="per-metric relative deltas of two manifests/JSON files"
    )
    p.add_argument("baseline", help="baseline manifest/directory/JSON file")
    p.add_argument("candidate", help="candidate manifest/directory/JSON file")
    p.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed relative delta before exiting 3 (default 0.2)",
    )
    p.add_argument(
        "--all", action="store_true", dest="show_all",
        help="list every shared key, not just the offenders",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser(
        "report", help="write a self-contained HTML report of a run"
    )
    p.add_argument("path", help="telemetry directory")
    p.add_argument(
        "--output", default=None, metavar="PATH",
        help="output file (default: <dir>/report.html)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="also embed a regression diff against this manifest/JSON",
    )
    p.add_argument(
        "--threshold", type=float, default=0.2,
        help="diff threshold for the embedded comparison",
    )

    p = sub.add_parser(
        "check", help="exit 2 when the run recorded watchdog alerts"
    )
    p.add_argument(
        "path", help="telemetry directory (or its manifest/events file)"
    )
    p.add_argument(
        "--min-severity", default="warning", choices=SEVERITIES,
        help="lowest severity that fails the check (default: warning)",
    )
    return parser


def _cmd_dump(args: argparse.Namespace) -> int:
    directory = resolve_directory(args.path)
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        raise ConfigurationError(f"no {EVENTS_FILENAME} in {directory!r}")
    import json

    for i, record in enumerate(read_jsonl(events_path)):
        if args.limit is not None and i >= args.limit:
            break
        print(json.dumps(record, sort_keys=True))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.diff import diff_paths, render_diff

    result = diff_paths(args.baseline, args.candidate)
    exceeded = result.exceeding(args.threshold)
    if args.json:
        print(json.dumps(
            {
                "threshold": args.threshold,
                "max_rel_delta": result.max_rel_delta(),
                "exceeded": [
                    {
                        "key": d.key,
                        "baseline": d.baseline,
                        "candidate": d.candidate,
                        "rel_delta": d.rel_delta,
                    }
                    for d in exceeded
                ],
                "only_baseline": result.only_baseline,
                "only_candidate": result.only_candidate,
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(render_diff(result, args.threshold, show_all=args.show_all))
    return 3 if exceeded else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import write_report

    path = write_report(
        resolve_directory(args.path),
        output=args.output,
        baseline=args.baseline,
        threshold=args.threshold,
    )
    print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    directory = resolve_directory(args.path)
    alerts = collect_alerts(_load_events(directory))
    floor = severity_rank(args.min_severity)
    failing = [
        a for a in alerts
        if severity_rank(str(a.get("severity", "warning"))) >= floor
    ]
    for line in _alert_lines(alerts):
        print(line)
    if failing:
        print(
            f"check failed: {len(failing)} alert(s) at or above "
            f"{args.min_severity!r}",
            file=sys.stderr,
        )
        return 2
    print(f"check passed: no alerts at or above {args.min_severity!r}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro obs``; returns the exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.action == "summarize":
            print(summarize(args.path))
            return 0
        if args.action == "dump":
            return _cmd_dump(args)
        if args.action == "diff":
            return _cmd_diff(args)
        if args.action == "check":
            return _cmd_check(args)
        return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro obs dump ... | head`
        return 0
