"""The ``repro obs`` subcommand: inspect telemetry directories.

* ``repro obs summarize PATH`` — round-trip a run's ``manifest.json`` +
  ``events.jsonl`` and print the human summary (phases, spans, metrics,
  timeline coverage, alerts, provenance); ``--json`` for the machine form.
* ``repro obs dump PATH`` — stream the raw JSONL records to stdout.
* ``repro obs diff BASELINE CANDIDATE`` — per-metric relative deltas of two
  manifests (or any numeric JSON, e.g. BENCH reports); exit 3 beyond
  ``--threshold`` (see :mod:`repro.obs.diff`).
* ``repro obs report DIR`` — one self-contained HTML file: phase timeline,
  per-span energy table, timeline sparklines with alert markers, optional
  diff summary (see :mod:`repro.obs.report`); ``--store`` renders the
  cross-run trend dashboard instead (see :mod:`repro.obs.store.report`).
* ``repro obs check PATH`` — gate on watchdog alerts: exit 2 when the run
  recorded any ``obs.alert`` at or above ``--min-severity``.
* ``repro obs ingest PATH...`` — register runs (or bench reports) in the
  content-addressed run registry (see :mod:`repro.obs.store`).
* ``repro obs query`` — select normalized records across every ingested
  run, with run- and record-level filters; deterministic text/JSON output.
* ``repro obs trend METRIC...`` — per-metric trajectories across runs,
  MAD-band gated; ``--check`` exits 2 on a regression, like ``obs check``.

``PATH`` may be the telemetry directory, the manifest file, or the events
file; the other artifacts are found beside it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs as _obs
from repro.errors import ConfigurationError, ReproError
from repro.obs.exporters import read_jsonl
from repro.obs.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    TIMELINE_FILENAME,
    RunManifest,
)
from repro.obs.watch import SEVERITIES, severity_rank

__all__ = [
    "RunSummary",
    "build_parser",
    "build_summary",
    "collect_alerts",
    "main",
    "resolve_directory",
    "summarize",
]

#: Record types the summary knows how to roll up.
_KNOWN_RECORD_TYPES = ("span", "phase", "event", "sample")


def resolve_directory(path: str) -> str:
    """The telemetry directory designated by ``path`` (dir or member file)."""
    if os.path.isdir(path):
        return path
    if os.path.basename(path) in (MANIFEST_FILENAME, EVENTS_FILENAME):
        return os.path.dirname(path) or "."
    raise ConfigurationError(
        f"{path!r} is not a telemetry directory, {MANIFEST_FILENAME} "
        f"or {EVENTS_FILENAME}"
    )


def _load_events(directory: str) -> List[dict]:
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        return []
    return list(read_jsonl(events_path))


def _span_rollup(events: Sequence[dict]) -> Dict[str, List[float]]:
    """``{name: [count, total_duration]}`` over span/phase records."""
    rollup: Dict[str, List[float]] = {}
    for record in events:
        if record.get("type") not in ("span", "phase"):
            continue
        entry = rollup.setdefault(record["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += float(record.get("dur", 0.0))
    return rollup


def _unknown_kinds(events: Sequence[dict]) -> Dict[str, int]:
    """Counts of record types the summary does not understand.

    Each sighting also increments ``repro_obs_unknown_records_total`` (a
    no-op outside a session, same idiom as the truncation counter) so an
    instrumented caller sees schema drift in its metrics, not just stderr.
    """
    unknown: Dict[str, int] = {}
    for record in events:
        kind = str(record.get("type"))
        if kind in _KNOWN_RECORD_TYPES:
            continue
        unknown[kind] = unknown.get(kind, 0) + 1
        # Straight to the default registry: summarize runs outside any
        # session, where the no-op `obs.counter` helper would drop the count.
        _obs.default_registry().counter(
            "repro_obs_unknown_records_total", kind=kind
        ).inc()
    return unknown


def collect_alerts(events: Sequence[dict]) -> List[dict]:
    """The ``obs.alert`` payloads of an event stream, in emission order."""
    alerts = []
    for record in events:
        if record.get("type") == "event" and record.get("name") == "obs.alert":
            alerts.append(dict(record.get("fields") or {}))
    return alerts


def _load_timeline(directory: str) -> List[dict]:
    path = os.path.join(directory, TIMELINE_FILENAME)
    if not os.path.exists(path):
        return []
    return list(read_jsonl(path))


def _timeline_lines(samples: Sequence[dict]) -> List[str]:
    if not samples:
        return []
    series: set = set()
    for sample in samples:
        series.update((sample.get("values") or {}).keys())
    t0 = float(samples[0].get("t", 0.0))
    t1 = float(samples[-1].get("t", 0.0))
    return [
        f"timeline: {len(samples)} samples across {len(series)} series "
        f"(t = {t0:g} .. {t1:g} s)"
    ]


def _alert_lines(alerts: Sequence[dict]) -> List[str]:
    if not alerts:
        return []
    by_severity: Dict[str, int] = {}
    for alert in alerts:
        severity = str(alert.get("severity", "warning"))
        by_severity[severity] = by_severity.get(severity, 0) + 1
    ordered = ", ".join(
        f"{sev}: {by_severity[sev]}"
        for sev in reversed(SEVERITIES)
        if sev in by_severity
    )
    lines = [f"alerts: {len(alerts)} ({ordered})"]
    seen: set = set()
    for alert in alerts:
        key = (alert.get("rule"), alert.get("series"))
        if key in seen:
            continue
        seen.add(key)
        lines.append(
            f"  [{alert.get('severity', '?'):8s}] {alert.get('rule', '?')} "
            f"on {alert.get('series', '?')} at t={float(alert.get('t', 0.0)):g} "
            f"(value {float(alert.get('value', 0.0)):g} vs "
            f"{float(alert.get('threshold', 0.0)):g})"
        )
    return lines


def _metric_lines(manifest: RunManifest) -> List[str]:
    lines = []
    for name in sorted(manifest.metrics):
        family = manifest.metrics[name]
        for series in family.get("series", []):
            labels = series.get("labels", {})
            rendered = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if family.get("kind") == "histogram":
                lines.append(
                    f"  {name}{rendered} count={series.get('count', 0)} "
                    f"sum={series.get('sum', 0.0):g}"
                )
            else:
                lines.append(f"  {name}{rendered} {series.get('value', 0.0):g}")
    return lines


@dataclass
class RunSummary:
    """Everything ``repro obs summarize`` reports about one run.

    :meth:`render` produces the human text (byte-identical to the historic
    ``summarize`` output); :meth:`to_dict` mirrors the same facts —
    identity, phase totals, span rollup, timeline coverage, alert counts,
    metric snapshot — in machine-readable form for ``--json``.
    """

    directory: str
    manifest: RunManifest
    span_rollup: Dict[str, List[float]] = field(default_factory=dict)
    timeline_samples: List[dict] = field(default_factory=list)
    alerts: List[dict] = field(default_factory=list)
    unknown_kinds: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        """The human-readable summary text."""
        manifest = self.manifest
        created = time.strftime(
            "%Y-%m-%d %H:%M:%S UTC", time.gmtime(manifest.created_unix)
        )
        lines = [
            f"run {manifest.label!r} ({manifest.run_id})",
            f"created {created}   schema v{manifest.schema_version}   "
            f"{manifest.n_events} events",
        ]
        if manifest.argv:
            lines.append("argv: " + " ".join(manifest.argv))
        scenario = manifest.config.get("scenario")
        if isinstance(scenario, dict) and scenario.get("digest"):
            lines.append(
                f"scenario: {scenario.get('name', '?')} "
                f"(digest {str(scenario['digest'])[:12]})"
            )
        prov = manifest.provenance
        if prov:
            commit = prov.get("git_commit")
            lines.append(
                "provenance: repro "
                f"{prov.get('repro_version', '?')}, python {prov.get('python', '?')}, "
                f"commit {commit[:12] if commit else 'n/a'}"
            )

        if manifest.durations:
            total = sum(manifest.durations.values())
            lines.append("phase totals:")
            for name, seconds in sorted(
                manifest.durations.items(), key=lambda kv: -kv[1]
            ):
                share = 100.0 * seconds / total if total else 0.0
                lines.append(f"  {name:14s} {seconds:12.2f} s  {share:5.1f}%")

        rollup = self.span_rollup
        if rollup:
            lines.append(f"spans/phases: {sum(int(v[0]) for v in rollup.values())} "
                         f"records across {len(rollup)} names")
            for name, (count, dur) in sorted(
                rollup.items(), key=lambda kv: -kv[1][1]
            )[:10]:
                lines.append(f"  {name:24s} x{int(count):<6d} {dur:12.2f} s")

        lines.extend(_timeline_lines(self.timeline_samples))
        lines.extend(_alert_lines(self.alerts))

        metric_lines = _metric_lines(manifest)
        if metric_lines:
            lines.append(f"metrics: {len(manifest.metrics)} families")
            lines.extend(metric_lines)

        unknown = self.unknown_kinds
        if unknown:
            kinds = ", ".join(f"{k} (x{unknown[k]})" for k in sorted(unknown))
            lines.append(
                f"ignored {sum(unknown.values())} record(s) of unknown kind: {kinds}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The machine-readable mirror of :meth:`render` (``--json``)."""
        manifest = self.manifest
        scenario = manifest.config.get("scenario")
        timeline = None
        if self.timeline_samples:
            series: set = set()
            for sample in self.timeline_samples:
                series.update((sample.get("values") or {}).keys())
            timeline = {
                "n_samples": len(self.timeline_samples),
                "n_series": len(series),
                "t0": float(self.timeline_samples[0].get("t", 0.0)),
                "t1": float(self.timeline_samples[-1].get("t", 0.0)),
            }
        by_severity: Dict[str, int] = {}
        for alert in self.alerts:
            severity = str(alert.get("severity", "warning"))
            by_severity[severity] = by_severity.get(severity, 0) + 1
        return {
            "label": manifest.label,
            "run_id": manifest.run_id,
            "trace_id": manifest.trace_id,
            "created_unix": manifest.created_unix,
            "schema_version": manifest.schema_version,
            "n_events": manifest.n_events,
            "argv": list(manifest.argv),
            "scenario": dict(scenario) if isinstance(scenario, dict) else None,
            "provenance": dict(manifest.provenance),
            "durations": dict(manifest.durations),
            "spans": {
                name: {"count": int(count), "seconds": float(dur)}
                for name, (count, dur) in sorted(self.span_rollup.items())
            },
            "timeline": timeline,
            "alerts": {
                "total": len(self.alerts),
                "by_severity": by_severity,
            },
            "metrics": manifest.metrics,
            "unknown_record_kinds": dict(self.unknown_kinds),
        }


def build_summary(path: str) -> RunSummary:
    """Gather everything the summary reports for one telemetry directory."""
    directory = resolve_directory(path)
    manifest = RunManifest.load(directory)
    events = _load_events(directory)
    return RunSummary(
        directory=directory,
        manifest=manifest,
        span_rollup=_span_rollup(events),
        timeline_samples=_load_timeline(directory),
        alerts=collect_alerts(events),
        unknown_kinds=_unknown_kinds(events),
    )


def summarize(path: str) -> str:
    """The human-readable summary of one telemetry directory."""
    return build_summary(path).render()


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro obs``."""
    from repro.obs.drift import (
        DEFAULT_MAD_K,
        DEFAULT_MIN_RECORDS,
        DEFAULT_REL_FLOOR,
        DIRECTIONS,
    )
    from repro.obs.store.core import DEFAULT_STORE_DIR
    from repro.obs.store.trend import DEFAULT_TREND_WINDOW, STATS

    parser = argparse.ArgumentParser(
        prog="repro obs", description="inspect telemetry run directories"
    )
    sub = parser.add_subparsers(dest="action", required=True)

    p = sub.add_parser("summarize", help="print the human run summary")
    p.add_argument(
        "path", help="telemetry directory (or its manifest/events file)"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser("dump", help="stream the raw JSONL records to stdout")
    p.add_argument(
        "path", help="telemetry directory (or its manifest/events file)"
    )
    p.add_argument(
        "--limit", type=int, default=None,
        help="print at most this many records",
    )

    p = sub.add_parser(
        "diff", help="per-metric relative deltas of two manifests/JSON files"
    )
    p.add_argument("baseline", help="baseline manifest/directory/JSON file")
    p.add_argument("candidate", help="candidate manifest/directory/JSON file")
    p.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed relative delta before exiting 3 (default 0.2)",
    )
    p.add_argument(
        "--all", action="store_true", dest="show_all",
        help="list every shared key, not just the offenders",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser(
        "report", help="write a self-contained HTML report of a run "
        "(or, with --store, the cross-run trend dashboard)"
    )
    p.add_argument(
        "path", nargs="?", default=None,
        help="telemetry directory (omit when using --store)",
    )
    p.add_argument(
        "--output", default=None, metavar="PATH",
        help="output file (default: <dir>/report.html, <store>/trends.html)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="also embed a regression diff against this manifest/JSON",
    )
    p.add_argument(
        "--threshold", type=float, default=0.2,
        help="diff threshold for the embedded comparison",
    )
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="render the cross-run trend dashboard of this run registry",
    )
    p.add_argument(
        "--metric", action="append", default=[], metavar="NAME",
        help="trend this metric in the --store dashboard (repeatable; "
        "default: every metric shared by >= 2 runs)",
    )

    p = sub.add_parser(
        "check", help="exit 2 when the run recorded watchdog alerts"
    )
    p.add_argument(
        "path", help="telemetry directory (or its manifest/events file)"
    )
    p.add_argument(
        "--min-severity", default="warning", choices=SEVERITIES,
        help="lowest severity that fails the check (default: warning)",
    )

    p = sub.add_parser(
        "ingest", help="register telemetry runs / bench reports in the run "
        "registry (idempotent by content digest)"
    )
    p.add_argument(
        "paths", nargs="+",
        help="telemetry directories (or BENCH_*.json reports) to ingest",
    )
    p.add_argument(
        "--store", default=DEFAULT_STORE_DIR, metavar="DIR",
        help=f"registry root (default: {DEFAULT_STORE_DIR})",
    )
    p.add_argument(
        "--no-stamp", action="store_true",
        help="do not write the store verdict back into the run manifest",
    )

    p = sub.add_parser(
        "query", help="select normalized records across ingested runs"
    )
    p.add_argument(
        "--store", default=DEFAULT_STORE_DIR, metavar="DIR",
        help=f"registry root (default: {DEFAULT_STORE_DIR})",
    )
    p.add_argument(
        "--where", action="append", default=[], metavar="K=V[,K=V...]",
        help="record filter clauses (kind/name/series/rule/severity/domain/"
        "metric_type/label.<name>; trailing * = prefix match; repeatable, "
        "all must hold)",
    )
    p.add_argument(
        "--scenario-digest", default=None, metavar="HEX",
        help="only runs of this scenario content digest (prefix ok)",
    )
    p.add_argument("--label", default=None, help="only runs with this label")
    p.add_argument(
        "--trace", default=None, metavar="HEX",
        help="only runs with this trace id (prefix ok)",
    )
    p.add_argument(
        "--run", default=None, metavar="HEX", dest="run_key",
        help="only this run key (prefix ok)",
    )
    p.add_argument(
        "--since", default=None, metavar="WHEN",
        help="only runs created at/after WHEN (unix seconds, YYYY-MM-DD, "
        "or YYYY-MM-DDTHH:MM:SS, UTC)",
    )
    p.add_argument(
        "--limit", type=int, default=None,
        help="stop after this many matching records",
    )
    p.add_argument(
        "--runs", action="store_true",
        help="list the matching run index rows instead of records",
    )
    p.add_argument("--json", action="store_true", help="JSON-lines output")

    p = sub.add_parser(
        "trend", help="per-metric trajectories across ingested runs, "
        "MAD-band gated (exit 2 on regression with --check)"
    )
    p.add_argument(
        "metrics", nargs="+", metavar="METRIC",
        help="registry metric, timeline series, span name, or bench key",
    )
    p.add_argument(
        "--store", default=DEFAULT_STORE_DIR, metavar="DIR",
        help=f"registry root (default: {DEFAULT_STORE_DIR})",
    )
    p.add_argument(
        "--stat", default="auto", choices=STATS,
        help="per-run aggregation (default: auto)",
    )
    p.add_argument(
        "--direction", default="above", choices=DIRECTIONS,
        help="which side of the band counts as regression (default: above)",
    )
    p.add_argument(
        "--window", type=int, default=DEFAULT_TREND_WINDOW,
        help=f"reference window of prior runs (default {DEFAULT_TREND_WINDOW})",
    )
    p.add_argument(
        "--mad-k", type=float, default=DEFAULT_MAD_K,
        help=f"band half-width in scaled MAD units (default {DEFAULT_MAD_K})",
    )
    p.add_argument(
        "--rel-floor", type=float, default=DEFAULT_REL_FLOOR,
        help="relative floor on the half-width as a fraction of |median| "
        f"(default {DEFAULT_REL_FLOOR})",
    )
    p.add_argument(
        "--min-records", type=int, default=DEFAULT_MIN_RECORDS,
        help="prior points required before gating "
        f"(default {DEFAULT_MIN_RECORDS})",
    )
    p.add_argument(
        "--scenario-digest", default=None, metavar="HEX",
        help="only runs of this scenario content digest (prefix ok)",
    )
    p.add_argument("--label", default=None, help="only runs with this label")
    p.add_argument(
        "--since", default=None, metavar="WHEN",
        help="only runs created at/after WHEN (unix seconds or UTC date)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="exit 2 when any trended metric regressed",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


def _cmd_dump(args: argparse.Namespace) -> int:
    directory = resolve_directory(args.path)
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        raise ConfigurationError(f"no {EVENTS_FILENAME} in {directory!r}")
    import json

    for i, record in enumerate(read_jsonl(events_path)):
        if args.limit is not None and i >= args.limit:
            break
        print(json.dumps(record, sort_keys=True))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    summary = build_summary(args.path)
    if args.json:
        import json

        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(summary.render())
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs.diff import diff_paths, render_diff

    result = diff_paths(args.baseline, args.candidate)
    exceeded = result.exceeding(args.threshold)
    if args.json:
        print(json.dumps(
            {
                "threshold": args.threshold,
                "max_rel_delta": result.max_rel_delta(),
                "exceeded": [
                    {
                        "key": d.key,
                        "baseline": d.baseline,
                        "candidate": d.candidate,
                        "rel_delta": d.rel_delta,
                    }
                    for d in exceeded
                ],
                "only_baseline": result.only_baseline,
                "only_candidate": result.only_candidate,
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(render_diff(result, args.threshold, show_all=args.show_all))
    return 3 if exceeded else 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.store is not None and args.path is not None:
        raise ConfigurationError(
            "give either a run directory or --store, not both"
        )
    if args.store is not None:
        from repro.obs.store.core import RunStore
        from repro.obs.store.report import write_store_report

        path = write_store_report(
            RunStore(args.store),
            output=args.output,
            metrics=args.metric or None,
        )
        print(f"wrote {path}", file=sys.stderr)
        return 0
    if args.path is None:
        raise ConfigurationError("report needs a run directory or --store DIR")
    from repro.obs.report import write_report

    path = write_report(
        resolve_directory(args.path),
        output=args.output,
        baseline=args.baseline,
        threshold=args.threshold,
    )
    print(f"wrote {path}", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    directory = resolve_directory(args.path)
    alerts = collect_alerts(_load_events(directory))
    floor = severity_rank(args.min_severity)
    failing = [
        a for a in alerts
        if severity_rank(str(a.get("severity", "warning"))) >= floor
    ]
    for line in _alert_lines(alerts):
        print(line)
    if failing:
        print(
            f"check failed: {len(failing)} alert(s) at or above "
            f"{args.min_severity!r}",
            file=sys.stderr,
        )
        return 2
    print(f"check passed: no alerts at or above {args.min_severity!r}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.obs.store.core import RunStore

    store = RunStore(args.store)
    for path in args.paths:
        result = store.ingest(path, stamp_manifest=not args.no_stamp)
        print(f"{result.describe()} from {path}")
    print(store.describe())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.obs.store.core import RunStore
    from repro.obs.store.query import (
        parse_since,
        parse_where,
        record_to_dict,
        render_records,
        render_runs,
        run_query,
        select_runs,
    )

    store = RunStore(args.store)
    since = parse_since(args.since) if args.since is not None else None
    if args.runs:
        rows = select_runs(
            store,
            scenario_digest=args.scenario_digest,
            label=args.label,
            trace=args.trace,
            run_key=args.run_key,
            since=since,
        )
        if args.json:
            for row in rows:
                print(json.dumps(row.to_dict(), sort_keys=True))
        else:
            print(render_runs(rows))
        return 0
    results = run_query(
        store,
        where=parse_where(args.where),
        scenario_digest=args.scenario_digest,
        label=args.label,
        trace=args.trace,
        run_key=args.run_key,
        since=since,
        limit=args.limit,
    )
    if args.json:
        for row, record in results:
            print(json.dumps(record_to_dict(row, record), sort_keys=True))
    else:
        print(render_records(results))
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    import json

    from repro.obs.store.core import RunStore
    from repro.obs.store.query import parse_since, select_runs
    from repro.obs.store.trend import compute_trends, render_trends

    store = RunStore(args.store)
    since = parse_since(args.since) if args.since is not None else None
    rows = select_runs(
        store,
        scenario_digest=args.scenario_digest,
        label=args.label,
        since=since,
    )
    trends = compute_trends(
        store,
        args.metrics,
        runs=rows,
        stat=args.stat,
        direction=args.direction,
        window=args.window,
        mad_k=args.mad_k,
        rel_floor=args.rel_floor,
        min_records=args.min_records,
    )
    failed = [t for t in trends if t.failed]
    if args.json:
        print(json.dumps(
            {
                "trends": [t.to_dict() for t in trends],
                "failed": [t.metric for t in failed],
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(render_trends(trends))
    if args.check and failed:
        print(
            f"trend check failed: {len(failed)} metric(s) regressed",
            file=sys.stderr,
        )
        return 2
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro obs``; returns the exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.action == "summarize":
            return _cmd_summarize(args)
        if args.action == "dump":
            return _cmd_dump(args)
        if args.action == "diff":
            return _cmd_diff(args)
        if args.action == "check":
            return _cmd_check(args)
        if args.action == "ingest":
            return _cmd_ingest(args)
        if args.action == "query":
            return _cmd_query(args)
        if args.action == "trend":
            return _cmd_trend(args)
        return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro obs dump ... | head`
        return 0
