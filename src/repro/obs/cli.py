"""The ``repro obs`` subcommand: inspect telemetry directories.

* ``repro obs summarize PATH`` — round-trip a run's ``manifest.json`` +
  ``events.jsonl`` and print the human summary (phases, spans, metrics,
  provenance).
* ``repro obs dump PATH`` — stream the raw JSONL records to stdout.

``PATH`` may be the telemetry directory, the manifest file, or the events
file; the other artifacts are found beside it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.obs.exporters import read_jsonl
from repro.obs.manifest import EVENTS_FILENAME, MANIFEST_FILENAME, RunManifest

__all__ = ["build_parser", "main", "resolve_directory", "summarize"]


def resolve_directory(path: str) -> str:
    """The telemetry directory designated by ``path`` (dir or member file)."""
    if os.path.isdir(path):
        return path
    if os.path.basename(path) in (MANIFEST_FILENAME, EVENTS_FILENAME):
        return os.path.dirname(path) or "."
    raise ConfigurationError(
        f"{path!r} is not a telemetry directory, {MANIFEST_FILENAME} "
        f"or {EVENTS_FILENAME}"
    )


def _load_events(directory: str) -> List[dict]:
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        return []
    return list(read_jsonl(events_path))


def _span_rollup(events: Sequence[dict]) -> Dict[str, List[float]]:
    """``{name: [count, total_duration]}`` over span/phase records."""
    rollup: Dict[str, List[float]] = {}
    for record in events:
        if record.get("type") not in ("span", "phase"):
            continue
        entry = rollup.setdefault(record["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += float(record.get("dur", 0.0))
    return rollup


def _metric_lines(manifest: RunManifest) -> List[str]:
    lines = []
    for name in sorted(manifest.metrics):
        family = manifest.metrics[name]
        for series in family.get("series", []):
            labels = series.get("labels", {})
            rendered = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if family.get("kind") == "histogram":
                lines.append(
                    f"  {name}{rendered} count={series.get('count', 0)} "
                    f"sum={series.get('sum', 0.0):g}"
                )
            else:
                lines.append(f"  {name}{rendered} {series.get('value', 0.0):g}")
    return lines


def summarize(path: str) -> str:
    """The human-readable summary of one telemetry directory."""
    directory = resolve_directory(path)
    manifest = RunManifest.load(directory)
    events = _load_events(directory)

    created = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(manifest.created_unix)
    )
    lines = [
        f"run {manifest.label!r} ({manifest.run_id})",
        f"created {created}   schema v{manifest.schema_version}   "
        f"{manifest.n_events} events",
    ]
    if manifest.argv:
        lines.append("argv: " + " ".join(manifest.argv))
    prov = manifest.provenance
    if prov:
        commit = prov.get("git_commit")
        lines.append(
            "provenance: repro "
            f"{prov.get('repro_version', '?')}, python {prov.get('python', '?')}, "
            f"commit {commit[:12] if commit else 'n/a'}"
        )

    if manifest.durations:
        total = sum(manifest.durations.values())
        lines.append("phase totals:")
        for name, seconds in sorted(
            manifest.durations.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {name:14s} {seconds:12.2f} s  {share:5.1f}%")

    rollup = _span_rollup(events)
    if rollup:
        lines.append(f"spans/phases: {sum(int(v[0]) for v in rollup.values())} "
                     f"records across {len(rollup)} names")
        for name, (count, dur) in sorted(rollup.items(), key=lambda kv: -kv[1][1])[:10]:
            lines.append(f"  {name:24s} x{int(count):<6d} {dur:12.2f} s")

    metric_lines = _metric_lines(manifest)
    if metric_lines:
        lines.append(f"metrics: {len(manifest.metrics)} families")
        lines.extend(metric_lines)
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro obs``."""
    parser = argparse.ArgumentParser(
        prog="repro obs", description="inspect telemetry run directories"
    )
    parser.add_argument(
        "action", choices=("summarize", "dump"), help="what to do with the run"
    )
    parser.add_argument(
        "path", help="telemetry directory (or its manifest/events file)"
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="dump: print at most this many records",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro obs``; returns the exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.action == "summarize":
            print(summarize(args.path))
        else:
            directory = resolve_directory(args.path)
            events_path = os.path.join(directory, EVENTS_FILENAME)
            if not os.path.exists(events_path):
                raise ConfigurationError(f"no {EVENTS_FILENAME} in {directory!r}")
            import json

            for i, record in enumerate(read_jsonl(events_path)):
                if args.limit is not None and i >= args.limit:
                    break
                print(json.dumps(record, sort_keys=True))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `repro obs dump ... | head`
        return 0
    return 0
