"""Telemetry exporters: JSONL event streams and Prometheus text exposition.

* :class:`JsonlWriter` — append-only newline-delimited JSON; one record per
  line, keys sorted, so streams diff cleanly across runs.
* :func:`read_jsonl` — the matching reader (iterator of dicts).
* :func:`to_prometheus` — render a :class:`~repro.obs.registry.MetricsRegistry`
  in the Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers,
  labelled samples, cumulative histogram buckets).
"""

from __future__ import annotations

import json
import os
import warnings
from typing import IO, Dict, Iterator, Optional

from repro.obs.registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry

__all__ = ["JsonlWriter", "read_jsonl", "to_prometheus", "write_prometheus"]


class JsonlWriter:
    """Append-only JSON-lines stream with deterministic key order.

    Every record is flushed to the OS as one complete line, so a crashed
    process leaves at most a torn *final* line — exactly the damage
    :func:`read_jsonl` tolerates — never a buffer's worth of lost records.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self.n_written = 0

    def write(self, record: dict) -> None:
        """Serialize one record onto its own line (flushed whole)."""
        if self._fh is None:
            raise ValueError(f"writer for {self.path!r} is closed")
        line = json.dumps(record, sort_keys=True, default=str)
        self._fh.write(line + "\n")
        self._fh.flush()
        self.n_written += 1

    def close(self) -> None:
        """Flush and close the stream (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_jsonl(path: str) -> Iterator[dict]:
    """Yield the records of a JSON-lines file, skipping blank lines.

    A malformed *final* line — the signature of a crash or power loss while
    a record was mid-write — is tolerated: it is dropped with a warning and
    a ``repro_obs_truncated_records_total`` count instead of killing the
    whole read.  Corruption anywhere else still raises, since that means
    the stream is damaged, not merely cut short.
    """
    from repro import obs

    with open(path, "r", encoding="utf-8") as fh:
        pending: Optional[str] = None
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                yield json.loads(pending)
            pending = line
        if pending is not None:
            try:
                yield json.loads(pending)
            except ValueError:
                warnings.warn(
                    f"dropping truncated final record in {path!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                obs.counter("repro_obs_truncated_records_total", file=path)


def _escape_label_value(value: str) -> str:
    # Order matters: escape the escape character first.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _merge_labels(labels: Dict[str, str], **extra: str) -> Dict[str, str]:
    merged = dict(labels)
    merged.update(extra)
    return merged


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if family.kind == "histogram" and not family.series:
            # A histogram family with zero observations still exposes its
            # full zero-valued shape — buckets, _sum and _count — so a
            # scraper's rate()/delta() over the series is well-defined from
            # the first exposition onward.
            for bound in tuple(family.bounds or DEFAULT_BUCKETS):
                labelled = _render_labels({"le": f"{bound:g}"})
                lines.append(f"{family.name}_bucket{labelled} 0")
            lines.append(f'{family.name}_bucket{{le="+Inf"}} 0')
            lines.append(f"{family.name}_sum 0")
            lines.append(f"{family.name}_count 0")
        for metric in family.series.values():
            if isinstance(metric, Histogram):
                for le, cum in metric.cumulative():
                    bound = "+Inf" if le == float("inf") else f"{le:g}"
                    labelled = _render_labels(_merge_labels(metric.labels, le=bound))
                    lines.append(f"{family.name}_bucket{labelled} {cum}")
                base = _render_labels(metric.labels)
                lines.append(f"{family.name}_sum{base} {metric.sum:g}")
                lines.append(f"{family.name}_count{base} {metric.count}")
            else:
                labelled = _render_labels(metric.labels)
                lines.append(f"{family.name}{labelled} {metric.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> str:
    """Write the exposition to ``path`` atomically; returns the path.

    Goes through write-to-temp + ``os.replace`` so a scraper (or a crash)
    never observes a half-written exposition.
    """
    from repro.atomicio import atomic_write_text

    atomic_write_text(path, to_prometheus(registry))
    return path
