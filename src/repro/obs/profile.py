"""Span-level energy attribution: which span burned the joules.

The paper's quantities are power and energy (Eq. 1, E = P·t); the telemetry
layer records *when* each phase ran and the platform emits the meter windows
(``power_trace`` events) for every simulated run.  This module joins the
two: it rebuilds the span tree from an ``events.jsonl`` stream and
integrates the run's total :class:`~repro.power.trace.PowerTrace` over each
span's ``[t0, t1]`` window.  Because the trace is piecewise-constant, the
attribution is exactly additive — children sum to their parent (plus the
parent's uncovered *self* time) and the root span's joules equal the trace
energy, within float tolerance.  Written/read bytes from the timestamped
``storage_write``/``storage_read`` events are apportioned the same way, to
the deepest span whose window contains the completion time.

Outputs: a text tree (``repro profile PATH``), folded flamegraph stacks
(``--flamegraph``; one ``frame;frame value`` line per node, values in
millijoules, collapsible by the standard ``flamegraph.pl`` / speedscope
tooling), and a JSON document (``--json``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.exporters import read_jsonl
from repro.obs.manifest import EVENTS_FILENAME
from repro.power.trace import PowerTrace

__all__ = [
    "ProfileResult",
    "RootProfile",
    "SpanNode",
    "folded_stacks",
    "profile_directory",
    "profile_events",
    "render_text",
    "write_flamegraph",
]

#: Span name the simulated/real platforms give a run's root span.
ROOT_SPAN_NAME = "pipeline.run"

#: Relative tolerance of the energy-conservation invariant.
CONSERVATION_RTOL = 0.01


@dataclass
class SpanNode:
    """One span or phase in the rebuilt trace tree."""

    id: int
    name: str
    parent: Optional[int]
    t0: float
    t1: float
    domain: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)
    #: Joules integrated over this node's window (None when unmetered).
    joules: Optional[float] = None
    #: Bytes written/read during this node's window, including children.
    bytes_written: float = 0.0
    bytes_read: float = 0.0

    @property
    def duration(self) -> float:
        """Window length in (domain) seconds."""
        return self.t1 - self.t0

    def self_joules(self) -> Optional[float]:
        """Energy of this node's window not covered by any child."""
        if self.joules is None:
            return None
        covered = sum(c.joules or 0.0 for c in self.children)
        return self.joules - covered

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first in record order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-safe representation of the subtree."""
        return {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "seconds": self.duration,
            "domain": self.domain,
            "attrs": dict(self.attrs),
            "joules": self.joules,
            "self_joules": self.self_joules(),
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "children": [c.to_dict() for c in self.children],
        }


@dataclass
class RootProfile:
    """One run's root span joined with its meter windows."""

    root: SpanNode
    #: Sum of the run's compute + storage traces (None for unmetered runs).
    trace: Optional[PowerTrace] = None

    @property
    def trace_joules(self) -> Optional[float]:
        """Total energy the meters recorded over the run."""
        return None if self.trace is None else self.trace.energy()

    @property
    def title(self) -> str:
        """Human/flamegraph frame label, unique across the usual grid."""
        pipeline = self.root.attrs.get("pipeline", self.root.name)
        interval = self.root.attrs.get("interval_hours")
        if interval is None:
            return str(pipeline)
        return f"{pipeline}@{interval:g}h"

    def conservation_error(self) -> Optional[float]:
        """Relative |root − trace| energy mismatch (None when unmetered)."""
        total = self.trace_joules
        if total is None or self.root.joules is None:
            return None
        if total == 0.0:
            return abs(self.root.joules)
        return abs(self.root.joules - total) / total


@dataclass
class ProfileResult:
    """The attribution profile of one telemetry directory."""

    trace_id: Optional[str]
    roots: List[RootProfile] = field(default_factory=list)

    def conservation_errors(self, rtol: float = CONSERVATION_RTOL) -> List[str]:
        """Human-readable invariant violations (empty when all conserve).

        Checks, per metered root: the root's joules match the trace energy
        within ``rtol``, and no node's children sum to more than the node
        itself (negative self-energy beyond tolerance).
        """
        problems: List[str] = []
        for rp in self.roots:
            err = rp.conservation_error()
            if err is not None and err > rtol:
                problems.append(
                    f"{rp.title}: root {rp.root.joules:.1f} J vs trace "
                    f"{rp.trace_joules:.1f} J ({100 * err:.2f}% off)"
                )
            if rp.root.joules is None:
                continue
            for node in rp.root.walk():
                self_j = node.self_joules()
                if self_j is not None and node.joules and \
                        self_j < -rtol * abs(node.joules):
                    problems.append(
                        f"{rp.title}: children of {node.name!r} sum to "
                        f"{node.joules - self_j:.1f} J, exceeding the node's "
                        f"{node.joules:.1f} J"
                    )
        return problems

    def to_dict(self) -> dict:
        """JSON-safe representation (``repro profile --json``)."""
        return {
            "trace_id": self.trace_id,
            "roots": [
                {
                    "title": rp.title,
                    "trace_joules": rp.trace_joules,
                    "conservation_error": rp.conservation_error(),
                    "tree": rp.root.to_dict(),
                }
                for rp in self.roots
            ],
        }


# --------------------------------------------------------------- construction


def _node_from_record(record: dict) -> SpanNode:
    return SpanNode(
        id=int(record["id"]),
        name=str(record["name"]),
        parent=None if record.get("parent") is None else int(record["parent"]),
        t0=float(record["t0"]),
        t1=float(record["t1"]),
        domain=str(record.get("domain", "wall")),
        attrs=dict(record.get("attrs") or {}),
    )


def _deepest_at(node: SpanNode, t: float) -> SpanNode:
    """The deepest descendant of ``node`` whose window contains ``t``."""
    for child in node.children:
        if child.t0 <= t <= child.t1:
            return _deepest_at(child, t)
    return node


def profile_events(records: Iterable[dict]) -> ProfileResult:
    """Build the attribution profile from an event stream.

    Single pass for pairing (every ``power_trace`` event follows its run's
    root span record), then per-root integration.  Streams from crashed or
    unmetered runs degrade gracefully: spans without a trace simply carry
    ``joules=None``.
    """
    nodes: Dict[int, SpanNode] = {}
    order: List[SpanNode] = []
    io_events: List[dict] = []
    traces: Dict[int, PowerTrace] = {}
    trace_id: Optional[str] = None
    last_root: Optional[SpanNode] = None

    for record in records:
        trace_id = record.get("trace", trace_id)
        kind = record.get("type")
        if kind in ("span", "phase"):
            node = _node_from_record(record)
            nodes[node.id] = node
            order.append(node)
            if node.parent is None and node.name == ROOT_SPAN_NAME:
                last_root = node
        elif kind == "event":
            name = record.get("name")
            fields = record.get("fields") or {}
            if name == "power_trace":
                if last_root is None:
                    raise ConfigurationError(
                        "power_trace event with no preceding root span"
                    )
                total = PowerTrace.from_dict(fields["compute"]) + \
                    PowerTrace.from_dict(fields["storage"])
                traces[last_root.id] = total
            elif name in ("storage_write", "storage_read"):
                io_events.append(record)

    # Link children in record order; orphans (parent never closed, e.g. a
    # killed run) become roots of their own partial trees.
    roots: List[SpanNode] = []
    for node in order:
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)

    # Bytes: each timestamped I/O completion goes to the deepest span whose
    # window contains it, then aggregates up the ancestry.
    for record in io_events:
        fields = record.get("fields") or {}
        anchor = nodes.get(record.get("parent"))
        if anchor is None:
            continue
        node = _deepest_at(anchor, float(fields.get("t", anchor.t0)))
        nbytes = float(fields.get("bytes", 0.0))
        key = "bytes_written" if record["name"] == "storage_write" else "bytes_read"
        while node is not None:
            setattr(node, key, getattr(node, key) + nbytes)
            node = nodes.get(node.parent) if node.parent is not None else None

    # Energy: integrate the run's total trace over every window in the tree.
    result = ProfileResult(trace_id=trace_id)
    for root in roots:
        trace = traces.get(root.id)
        if trace is not None:
            for node in root.walk():
                node.joules = trace.energy_between(node.t0, node.t1)
        result.roots.append(RootProfile(root=root, trace=trace))

    obs.counter("repro_profile_roots_total", len(result.roots))
    obs.counter("repro_profile_spans_total", len(order))
    unattributed = sum(
        rp.root.self_joules() or 0.0 for rp in result.roots
    )
    if unattributed:
        obs.counter("repro_profile_unattributed_joules", max(unattributed, 0.0))
    return result


def profile_directory(path: str) -> ProfileResult:
    """Profile a telemetry directory (or its events file)."""
    from repro.obs.cli import resolve_directory

    directory = resolve_directory(path)
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        raise ConfigurationError(f"no {EVENTS_FILENAME} in {directory!r}")
    return profile_events(read_jsonl(events_path))


# ------------------------------------------------------------------ rendering


def _fmt_energy(joules: Optional[float]) -> str:
    if joules is None:
        return "      n/a"
    if abs(joules) >= 1e6:
        return f"{joules / 1e6:8.2f} MJ"
    if abs(joules) >= 1e3:
        return f"{joules / 1e3:8.2f} kJ"
    return f"{joules:8.1f} J"


def _fmt_bytes(nbytes: float) -> str:
    if nbytes >= 1e9:
        return f"{nbytes / 1e9:7.2f} GB"
    if nbytes >= 1e6:
        return f"{nbytes / 1e6:7.2f} MB"
    return f"{nbytes:7.0f} B"


def _tree_lines(node: SpanNode, root_joules: Optional[float], depth: int) -> List[str]:
    share = ""
    if root_joules and node.joules is not None:
        share = f"{100 * node.joules / root_joules:5.1f}%"
    line = (
        f"{'  ' * depth}{node.name:<{max(24 - 2 * depth, 8)}s} "
        f"{node.duration:12.1f} s  {share:>6s}  {_fmt_energy(node.joules)}  "
        f"{_fmt_bytes(node.bytes_written)}"
    )
    lines = [line]
    for child in node.children:
        lines.extend(_tree_lines(child, root_joules, depth + 1))
    if node.children:
        self_j = node.self_joules()
        self_share = ""
        if root_joules and self_j is not None:
            self_share = f"{100 * self_j / root_joules:5.1f}%"
        lines.append(
            f"{'  ' * (depth + 1)}{'(self)':<{max(24 - 2 * (depth + 1), 8)}s} "
            f"{'':>12s}    {self_share:>6s}  {_fmt_energy(self_j)}  "
            f"{_fmt_bytes(0.0)}"
        )
    return lines


def render_text(result: ProfileResult) -> str:
    """The human-readable per-span energy profile."""
    total = sum(rp.trace_joules or 0.0 for rp in result.roots)
    lines = [
        f"trace {result.trace_id or 'n/a'} · {len(result.roots)} run(s) · "
        f"{_fmt_energy(total).strip()} metered total"
    ]
    for rp in result.roots:
        err = rp.conservation_error()
        err_note = f", conservation {100 * (err or 0.0):.3f}% off" if err is not None else ""
        lines.append("")
        lines.append(
            f"{rp.title} — {rp.root.duration:.1f} s, "
            f"{_fmt_energy(rp.root.joules).strip()}, "
            f"{_fmt_bytes(rp.root.bytes_written).strip()} written"
            f"{err_note}"
        )
        lines.extend(_tree_lines(rp.root, rp.root.joules, 1))
    return "\n".join(lines)


def folded_stacks(result: ProfileResult) -> str:
    """Folded flamegraph stacks, one ``frame;frame value`` line per node.

    Values are the node's *self* contribution in integer millijoules (or
    milliseconds for unmetered runs), the format ``flamegraph.pl`` and
    speedscope consume directly.
    """
    lines: List[str] = []

    def emit(node: SpanNode, stack: str, metered: bool) -> None:
        frame = f"{stack};{node.name}" if stack else node.name
        value = node.self_joules() if metered else (
            node.duration - sum(c.duration for c in node.children)
        )
        count = int(round(1000.0 * max(value or 0.0, 0.0)))
        if count > 0:
            lines.append(f"{frame} {count}")
        for child in node.children:
            emit(child, frame, metered)

    for rp in result.roots:
        metered = rp.root.joules is not None
        base = rp.title
        value = rp.root.self_joules() if metered else (
            rp.root.duration - sum(c.duration for c in rp.root.children)
        )
        count = int(round(1000.0 * max(value or 0.0, 0.0)))
        if count > 0:
            lines.append(f"{base} {count}")
        for child in rp.root.children:
            emit(child, base, metered)
    return "\n".join(lines) + ("\n" if lines else "")


def write_flamegraph(result: ProfileResult, path: str) -> str:
    """Write the folded stacks to ``path``; returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(folded_stacks(result))
    return path
