"""Lossless and quantized compression for raw field output.

A middle ground between the paper's two pipelines: post-processing could
shrink its netCDF output by compressing fields before they hit Lustre.  This
module provides the codecs —

* :func:`compress_field` / :func:`decompress_field` — byte-shuffled zlib
  (lossless), optionally preceded by uniform quantization to a caller-chosen
  absolute precision (lossy but bounded error, like netCDF's
  least-significant-digit trimming);
* :class:`CompressedFieldWriter` — an nclite-compatible container of
  compressed variables with exact size accounting,

so the ablation benches can ask: how much compression would post-processing
need before Fig. 9's storage wall stops forcing coarse sampling?
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError, FileFormatError

__all__ = [
    "compress_field",
    "decompress_field",
    "compression_ratio",
    "CompressedFieldWriter",
]

_MAGIC = b"NCLZ"


def _shuffle(raw: bytes, itemsize: int) -> bytes:
    """Byte-shuffle (transpose byte planes) — the classic HDF5 filter."""
    arr = np.frombuffer(raw, dtype=np.uint8).reshape(-1, itemsize)
    return arr.T.tobytes()


def _unshuffle(raw: bytes, itemsize: int) -> bytes:
    arr = np.frombuffer(raw, dtype=np.uint8).reshape(itemsize, -1)
    return arr.T.tobytes()


def compress_field(
    field: np.ndarray,
    precision: Optional[float] = None,
    level: int = 6,
) -> bytes:
    """Compress a float array; returns a self-describing byte string.

    ``precision`` enables uniform quantization: values are rounded to the
    nearest multiple of ``precision`` before encoding, bounding the
    round-trip error by ``precision / 2`` while making the byte planes far
    more compressible.  ``None`` keeps the field bit-exact.
    """
    field = np.asarray(field)
    if field.dtype != np.float64 and field.dtype != np.float32:
        raise ConfigurationError(f"compress_field expects floats, got {field.dtype}")
    if precision is not None and precision <= 0:
        raise ConfigurationError(f"precision must be positive: {precision}")
    header = {
        "dtype": str(field.dtype),
        "shape": list(field.shape),
        "precision": precision,
    }
    if precision is None:
        payload = np.ascontiguousarray(field)
        quantized = False
    else:
        payload = np.round(field / precision).astype(np.int64)
        quantized = True
    header["quantized"] = quantized
    raw = payload.tobytes()
    shuffled = _shuffle(raw, payload.dtype.itemsize)
    compressed = zlib.compress(shuffled, level)
    head = json.dumps(header, sort_keys=True).encode()
    return _MAGIC + struct.pack(">I", len(head)) + head + compressed


def decompress_field(data: bytes) -> np.ndarray:
    """Invert :func:`compress_field`."""
    if not data.startswith(_MAGIC):
        raise FileFormatError("not a compressed-field stream")
    (head_len,) = struct.unpack(">I", data[4:8])
    try:
        header = json.loads(data[8 : 8 + head_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FileFormatError(f"corrupt compression header: {exc}") from exc
    body = zlib.decompress(data[8 + head_len :])
    shape = tuple(header["shape"])
    dtype = np.dtype(header["dtype"])
    if header["quantized"]:
        raw = _unshuffle(body, np.dtype(np.int64).itemsize)
        ints = np.frombuffer(raw, dtype=np.int64).reshape(shape)
        return (ints * header["precision"]).astype(dtype)
    raw = _unshuffle(body, dtype.itemsize)
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def compression_ratio(
    fields: Mapping[str, np.ndarray], precision: Optional[float] = None
) -> float:
    """Compressed size / raw size over a set of fields (< 1 is smaller)."""
    if not fields:
        raise ConfigurationError("compression_ratio of no fields")
    raw = sum(np.asarray(f).nbytes for f in fields.values())
    packed = sum(len(compress_field(np.asarray(f, dtype=float), precision))
                 for f in fields.values())
    return packed / raw


class CompressedFieldWriter:
    """Writes a dict of fields as one compressed container file."""

    def __init__(self, precision: Optional[float] = None, level: int = 6) -> None:
        if level < 0 or level > 9:
            raise ConfigurationError(f"zlib level outside [0, 9]: {level}")
        self.precision = precision
        self.level = level
        self.bytes_raw = 0
        self.bytes_written = 0

    def serialize(self, fields: Mapping[str, np.ndarray]) -> bytes:
        """One container: length-prefixed (name, compressed payload) pairs."""
        if not fields:
            raise ConfigurationError("serialize() of no fields")
        out = bytearray(_MAGIC)
        out += struct.pack(">I", len(fields))
        for name, field in fields.items():
            blob = compress_field(
                np.asarray(field, dtype=float), self.precision, self.level
            )
            encoded_name = name.encode()
            out += struct.pack(">I", len(encoded_name)) + encoded_name
            out += struct.pack(">Q", len(blob)) + blob
            self.bytes_raw += np.asarray(field).nbytes
        self.bytes_written += len(out)
        return bytes(out)

    @staticmethod
    def deserialize(data: bytes) -> dict[str, np.ndarray]:
        """Invert :meth:`serialize`."""
        if not data.startswith(_MAGIC):
            raise FileFormatError("not a compressed container")
        (count,) = struct.unpack(">I", data[4:8])
        pos = 8
        out: dict[str, np.ndarray] = {}
        for _ in range(count):
            (name_len,) = struct.unpack(">I", data[pos : pos + 4])
            pos += 4
            name = data[pos : pos + name_len].decode()
            pos += name_len
            (blob_len,) = struct.unpack(">Q", data[pos : pos + 8])
            pos += 8
            out[name] = decompress_field(data[pos : pos + blob_len])
            pos += blob_len
        if pos != len(data):
            raise FileFormatError("trailing bytes in compressed container")
        return out

    def write(self, path: str, fields: Mapping[str, np.ndarray]) -> int:
        """Serialize to disk; returns bytes written."""
        blob = self.serialize(fields)
        with open(path, "wb") as fh:
            fh.write(blob)
        return len(blob)

    @property
    def overall_ratio(self) -> float:
        """Aggregate compressed/raw ratio over everything written."""
        if self.bytes_raw == 0:
            raise ConfigurationError("nothing written yet")
        return self.bytes_written / self.bytes_raw
