"""nclite — a minimal self-describing array container.

Stand-in for the netCDF files the paper's post-processing pipeline writes.
On-disk layout::

    magic   b"NCL1"
    u32     header length (JSON, UTF-8)
    bytes   header JSON: {"dims": {...}, "attrs": {...},
                          "vars": [{"name", "dtype", "dims", "attrs", "nbytes"}]}
    bytes   variable payloads, concatenated in header order (C-order)

Variables reference named dimensions, netCDF-style; shapes are validated
against the dimension table on write and reconstructed on read.
:func:`nclite_nbytes` computes the exact serialized size without
serializing — the simulated platform uses it to account I/O volume.
"""

from __future__ import annotations

import io as _io
import json
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Mapping, Optional, Union

import numpy as np

from repro.errors import ConfigurationError, FileFormatError

__all__ = ["NcliteFile", "write_nclite", "read_nclite", "nclite_nbytes"]

_MAGIC = b"NCL1"
_SUPPORTED_DTYPES = {"float64", "float32", "int64", "int32", "int16", "uint8"}


@dataclass
class NcliteFile:
    """An in-memory nclite dataset: dimensions, variables, attributes."""

    dims: dict[str, int] = field(default_factory=dict)
    variables: dict[str, np.ndarray] = field(default_factory=dict)
    var_dims: dict[str, tuple[str, ...]] = field(default_factory=dict)
    attrs: dict[str, object] = field(default_factory=dict)
    var_attrs: dict[str, dict[str, object]] = field(default_factory=dict)

    def add_dim(self, name: str, size: int) -> None:
        """Declare a named dimension."""
        if not name:
            raise ConfigurationError("dimension name must be non-empty")
        if size < 1:
            raise ConfigurationError(f"dimension {name!r} must have size >= 1, got {size}")
        if name in self.dims and self.dims[name] != size:
            raise ConfigurationError(
                f"dimension {name!r} redefined: {self.dims[name]} -> {size}"
            )
        self.dims[name] = int(size)

    def add_variable(
        self,
        name: str,
        data: np.ndarray,
        dims: tuple[str, ...],
        attrs: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Add a variable over previously declared dimensions."""
        if not name:
            raise ConfigurationError("variable name must be non-empty")
        if name in self.variables:
            raise ConfigurationError(f"variable {name!r} already present")
        data = np.ascontiguousarray(data)
        if str(data.dtype) not in _SUPPORTED_DTYPES:
            raise ConfigurationError(f"unsupported dtype {data.dtype} for {name!r}")
        if len(dims) != data.ndim:
            raise ConfigurationError(
                f"{name!r}: {len(dims)} dims declared for a {data.ndim}-D array"
            )
        for d, size in zip(dims, data.shape):
            if d not in self.dims:
                raise ConfigurationError(f"{name!r} references undeclared dimension {d!r}")
            if self.dims[d] != size:
                raise ConfigurationError(
                    f"{name!r}: axis {d!r} has size {size}, dimension is {self.dims[d]}"
                )
        self.variables[name] = data
        self.var_dims[name] = tuple(dims)
        self.var_attrs[name] = dict(attrs or {})

    def nbytes(self) -> int:
        """Exact serialized size of this dataset in bytes."""
        return len(_MAGIC) + 4 + len(self._header_bytes()) + sum(
            v.nbytes for v in self.variables.values()
        )

    # -------------------------------------------------------------- internals

    def _header_bytes(self) -> bytes:
        header = {
            "dims": self.dims,
            "attrs": self.attrs,
            "vars": [
                {
                    "name": name,
                    "dtype": str(arr.dtype),
                    "dims": list(self.var_dims[name]),
                    "attrs": self.var_attrs.get(name, {}),
                    "nbytes": arr.nbytes,
                }
                for name, arr in self.variables.items()
            ],
        }
        return json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")

    def write(self, target: Union[str, BinaryIO]) -> int:
        """Serialize to a path or binary file object; returns bytes written."""
        header = self._header_bytes()
        if isinstance(target, str):
            fh: BinaryIO = open(target, "wb")
            close = True
        else:
            fh, close = target, False
        try:
            n = fh.write(_MAGIC)
            n += fh.write(struct.pack(">I", len(header)))
            n += fh.write(header)
            for arr in self.variables.values():
                n += fh.write(arr.tobytes())
            return n
        finally:
            if close:
                fh.close()

    @classmethod
    def read(cls, source: Union[str, bytes, BinaryIO]) -> "NcliteFile":
        """Deserialize from a path, byte string, or binary file object."""
        if isinstance(source, str):
            with open(source, "rb") as fh:
                return cls.read(fh.read())
        if isinstance(source, (bytes, bytearray)):
            buf: BinaryIO = _io.BytesIO(source)
        else:
            buf = source
        magic = buf.read(4)
        if magic != _MAGIC:
            raise FileFormatError(f"bad nclite magic {magic!r}")
        raw_len = buf.read(4)
        if len(raw_len) != 4:
            raise FileFormatError("truncated nclite header length")
        (header_len,) = struct.unpack(">I", raw_len)
        header_raw = buf.read(header_len)
        if len(header_raw) != header_len:
            raise FileFormatError("truncated nclite header")
        try:
            header = json.loads(header_raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FileFormatError(f"corrupt nclite header: {exc}") from exc
        out = cls(dims=dict(header["dims"]), attrs=dict(header.get("attrs", {})))
        for rec in header["vars"]:
            dtype = rec["dtype"]
            if dtype not in _SUPPORTED_DTYPES:
                raise FileFormatError(f"unsupported dtype {dtype!r} in file")
            shape = tuple(out.dims[d] for d in rec["dims"])
            payload = buf.read(rec["nbytes"])
            if len(payload) != rec["nbytes"]:
                raise FileFormatError(f"truncated payload for variable {rec['name']!r}")
            arr = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
            out.variables[rec["name"]] = arr
            out.var_dims[rec["name"]] = tuple(rec["dims"])
            out.var_attrs[rec["name"]] = dict(rec.get("attrs", {}))
        return out


def write_nclite(
    path: str,
    fields: Mapping[str, np.ndarray],
    attrs: Optional[Mapping[str, object]] = None,
) -> int:
    """Convenience: write 2-D ``(y, x)`` fields sharing one grid; returns bytes.

    All fields must share a shape; dimensions are named ``y`` and ``x``.
    """
    ds = _dataset_from_fields(fields, attrs)
    return ds.write(path)


def _dataset_from_fields(
    fields: Mapping[str, np.ndarray], attrs: Optional[Mapping[str, object]] = None
) -> NcliteFile:
    if not fields:
        raise ConfigurationError("write_nclite with no fields")
    ds = NcliteFile(attrs=dict(attrs or {}))
    shape = None
    for name, arr in fields.items():
        arr = np.asarray(arr)
        if arr.ndim != 2:
            raise ConfigurationError(f"field {name!r} must be 2-D, got {arr.shape}")
        if shape is None:
            shape = arr.shape
            ds.add_dim("y", shape[0])
            ds.add_dim("x", shape[1])
        elif arr.shape != shape:
            raise ConfigurationError(
                f"field {name!r} shape {arr.shape} differs from {shape}"
            )
        ds.add_variable(name, arr.astype(np.float64, copy=False), ("y", "x"))
    return ds


def read_nclite(path: str) -> dict[str, np.ndarray]:
    """Convenience: read back the variables of an nclite file."""
    return dict(NcliteFile.read(path).variables)


def nclite_nbytes(
    fields: Mapping[str, np.ndarray], attrs: Optional[Mapping[str, object]] = None
) -> int:
    """Exact serialized size of :func:`write_nclite` output, without writing."""
    return _dataset_from_fields(fields, attrs).nbytes()
