"""PIO-style parallel I/O aggregation.

The paper's post-processing pipeline "uses the PIO library, which in turn
uses parallel netCDF so that the output can be written to the parallel file
system faster".  PIO's core idea is *aggregation*: rather than all N compute
ranks hitting the filesystem, data funnels over the interconnect to a small
number of I/O aggregator ranks that issue large, well-formed writes.

:class:`PIOWriter` models exactly that: an interconnect-cost gather stage
followed by a backend write.  Two backends share the interface:

* :class:`RealIOBackend` — writes actual bytes into a real directory
  (real-mode pipelines, examples, tests);
* :class:`SimulatedIOBackend` — a DES process writing through the simulated
  Lustre filesystem (campaign-scale runs).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Generator, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.io.ncformat import write_nclite

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Interconnect
    from repro.storage.lustre import LustreFileSystem

__all__ = ["RealIOBackend", "SimulatedIOBackend", "PIOWriter"]


class RealIOBackend:
    """Backend writing real nclite files into a directory."""

    def __init__(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.bytes_written = 0
        self.files_written = 0

    def write_fields(
        self, relpath: str, fields: Mapping[str, np.ndarray], attrs: Optional[Mapping[str, object]] = None
    ) -> int:
        """Serialize ``fields`` to ``relpath``; returns the byte count."""
        path = os.path.join(self.directory, relpath)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        n = write_nclite(path, fields, attrs)
        self.bytes_written += n
        self.files_written += 1
        return n

    def path_of(self, relpath: str) -> str:
        """Absolute path of a previously written file."""
        return os.path.join(self.directory, relpath)


class SimulatedIOBackend:
    """Backend accounting writes through the simulated Lustre filesystem."""

    def __init__(self, filesystem: "LustreFileSystem") -> None:
        self.fs = filesystem
        self.bytes_written = 0.0
        self.files_written = 0

    def write_bytes(self, relpath: str, nbytes: float, overwrite: bool = False) -> Generator:
        """DES process: write ``nbytes`` to ``relpath`` through Lustre.

        ``overwrite=True`` replaces an existing file instead of extending it
        (restart-safe rewrites after a checkpoint recovery).
        """
        yield from self.fs.write(relpath, nbytes, overwrite=overwrite)
        self.bytes_written += nbytes
        self.files_written += 1

    def read_bytes(self, relpath: str) -> Generator:
        """DES process: read the whole file back."""
        yield from self.fs.read(relpath)


class PIOWriter:
    """Aggregating writer: compute ranks → aggregators → filesystem.

    ``aggregation_seconds`` estimates the cost of funnelling one sample's
    data from all compute ranks to the aggregators over the interconnect.
    On QDR IB this is small relative to the Lustre write itself — which is
    why the paper's α is dominated by storage bandwidth — but it is not
    zero, and it scales with data volume, so it is modelled explicitly.
    """

    def __init__(self, n_ranks: int, n_aggregators: int, interconnect: "Interconnect") -> None:
        if n_ranks < 1:
            raise ConfigurationError(f"need >= 1 rank, got {n_ranks}")
        if not 1 <= n_aggregators <= n_ranks:
            raise ConfigurationError(
                f"n_aggregators must be in [1, {n_ranks}], got {n_aggregators}"
            )
        self.n_ranks = n_ranks
        self.n_aggregators = n_aggregators
        self.interconnect = interconnect

    def aggregation_seconds(self, nbytes: float) -> float:
        """Interconnect time to funnel ``nbytes`` to the aggregators.

        Each aggregator collects from ``n_ranks / n_aggregators`` senders in
        sequence (they share the aggregator's link); aggregators work in
        parallel.
        """
        if nbytes < 0:
            raise ConfigurationError(f"negative data volume: {nbytes}")
        senders_per_agg = max(1, self.n_ranks // self.n_aggregators)
        bytes_per_sender = nbytes / self.n_ranks
        per_message = self.interconnect.point_to_point_time(bytes_per_sender)
        return senders_per_agg * per_message

    def write_simulated(
        self, backend: SimulatedIOBackend, relpath: str, nbytes: float, overwrite: bool = False
    ) -> Generator:
        """DES process: aggregate then write ``nbytes`` through the backend."""
        agg = self.aggregation_seconds(nbytes)
        if agg > 0:
            yield backend.fs.sim.timeout(agg)
        yield from backend.write_bytes(relpath, nbytes, overwrite=overwrite)

    def write_real(
        self,
        backend: RealIOBackend,
        relpath: str,
        fields: Mapping[str, np.ndarray],
        attrs: Optional[Mapping[str, object]] = None,
    ) -> int:
        """Aggregate (a no-op in-process) then write real bytes."""
        return backend.write_fields(relpath, fields, attrs)
