"""I/O substrate: the netCDF / PIO stand-in.

* :mod:`repro.io.ncformat` — "nclite", a minimal self-describing binary
  array container (named dimensions, typed variables, attributes) with exact
  size accounting, standing in for (parallel) netCDF.
* :mod:`repro.io.pio` — a PIO-style aggregating writer: compute ranks funnel
  their blocks to a subset of I/O aggregator ranks, which stream to the
  filesystem.  Backends write either to a real directory or through the
  simulated Lustre cluster.
"""

from repro.io.ncformat import NcliteFile, nclite_nbytes, read_nclite, write_nclite
from repro.io.pio import PIOWriter, RealIOBackend, SimulatedIOBackend

__all__ = [
    "NcliteFile",
    "PIOWriter",
    "RealIOBackend",
    "SimulatedIOBackend",
    "nclite_nbytes",
    "read_nclite",
    "write_nclite",
]
