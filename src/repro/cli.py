"""Command-line interface: ``python -m repro <command>``.

Commands map onto the paper's sections:

* ``characterize`` — run the Section V experiment grid, print the table.
* ``calibrate``    — fit Eq. 5 and validate on held-out cells (Fig. 8).
* ``whatif``       — Figs. 9/10 sweeps for an arbitrary campaign length.
* ``faults``       — seeded fault campaign: both pipelines under identical
  fault loads, with and without checkpoint/restart (see ``repro.faults``).
* ``plan``         — the Section VII advisor: pipeline + cadence under budgets.
* ``report``       — the full Markdown study report (all sections).
* ``hypotheses``   — score the Section II-C hypotheses (the §V-A findings box).
* ``quality``      — measured eddy-tracking fidelity vs cadence (extension).
* ``proportionality`` — the storage/compute power-proportionality tables.
* ``bench``        — run the fig3/fig9/fig10 sweep set through the execution
  engine (serial vs parallel vs cached) and emit ``BENCH_exec.json``;
  ``bench history`` maintains the append-only trajectory ledger
  (``BENCH_history.jsonl``) and gates on MAD-band drift (``--check``).
* ``run``          — execute a declarative scenario file (YAML/JSON; see
  ``repro.scenario`` and ``docs/SCENARIOS.md``), with ``--set`` overrides.
* ``scenario``     — validate/hash scenario files and check the template
  gallery under ``scenarios/`` against its digest manifest.
* ``lint``         — the project's static-analysis pass (see ``repro.lint``).
* ``obs``          — inspect telemetry run directories: ``summarize``,
  ``dump``, ``diff`` (two manifests or BENCH files, threshold-gated) and
  ``report`` (self-contained HTML) — see ``repro.obs.cli``.
* ``profile``      — span-level energy attribution of a recorded run: text
  tree, ``--flamegraph`` folded stacks, ``--json`` (see ``repro.obs.profile``).

``characterize``, ``report`` and ``whatif`` accept ``--telemetry PATH`` to
record the run's spans, metrics and manifest under ``PATH``.  Telemetry
runs also sample a continuous resource timeline (``timeline.jsonl``) with
watchdog alerting — tune with ``--timeline-interval`` / ``--power-cap`` or
disable with ``--no-timeline``;
``characterize`` and ``hypotheses`` accept ``--json`` for machine-readable
output.  Grid-running commands accept ``--workers N`` (fan the runs out
over a process pool; results stay bit-identical to serial) and
``--cache DIR`` (memoize completed runs on disk).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import obs, run_characterization
from repro.analysis.quality import evaluate_sampling_quality, quality_table
from repro.core.advisor import Constraints, PipelineAdvisor
from repro.core.characterization import CharacterizationStudy, storage_power_sweep
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.units import format_energy, kwh_to_joules, years

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Characterizing and Modeling Power and "
        "Energy for Extreme-Scale In-Situ Visualization' (IPDPS 2017).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry_help = "record spans/metrics/manifest under this directory"

    def add_telemetry_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--telemetry", default=None, metavar="PATH", help=telemetry_help)
        p.add_argument(
            "--timeline-interval", type=float, default=None, metavar="SECONDS",
            help="timeline sampling grid in simulated seconds "
            "(default: the run window / 128)",
        )
        p.add_argument(
            "--no-timeline", action="store_true",
            help="disable continuous timeline sampling under --telemetry",
        )
        p.add_argument(
            "--power-cap", type=float, default=None, metavar="WATTS",
            help="watchdog power cap: sampled draw above this emits a "
            "critical obs.alert",
        )
        p.add_argument(
            "--store", default=None, metavar="DIR",
            help="after the run, ingest its telemetry into this run "
            "registry (needs --telemetry; query with `repro obs query`)",
        )

    def add_engine_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="fan simulation runs out over N worker processes",
        )
        p.add_argument(
            "--cache", default=None, metavar="DIR",
            help="memoize completed runs in this on-disk cache",
        )
        p.add_argument(
            "--supervise", action="store_true",
            help="supervised execution: worker-crash recovery, bounded "
            "retries, structured failure records (see docs/RESILIENCE.md)",
        )
        p.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="per-task wall-clock deadline (implies --supervise)",
        )
        p.add_argument(
            "--task-retries", type=int, default=None, metavar="N",
            help="attempts per task including the first (implies --supervise)",
        )
        p.add_argument(
            "--max-worker-crashes", type=int, default=None, metavar="N",
            help="worker crashes before a task is quarantined as poison "
            "(implies --supervise)",
        )
        p.add_argument(
            "--fail-policy", default=None,
            choices=["abort", "skip", "serial-fallback"],
            help="what an exhausted task does to the sweep "
            "(implies --supervise; default abort)",
        )
        p.add_argument(
            "--journal", default=None, metavar="PATH",
            help="append per-task outcomes to this sweep journal "
            "(implies --supervise)",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="skip tasks the journal records as done, replaying them "
            "from --cache (needs --journal and --cache)",
        )

    def add_scenario_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--emit-scenario", default=None, metavar="PATH",
            help="write this invocation as a scenario file (YAML or JSON by "
            "extension) and exit without running",
        )

    p = sub.add_parser("characterize", help="run the Section V experiment grid")
    p.add_argument(
        "--intervals", type=float, nargs="+", default=[8.0, 24.0, 72.0],
        metavar="HOURS", help="sampling cadences in simulated hours",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    add_telemetry_args(p)
    add_engine_args(p)
    add_scenario_args(p)

    p = sub.add_parser("calibrate", help="fit Eq. 5 and validate (Fig. 8)")

    p = sub.add_parser("whatif", help="Figs. 9/10 sweeps")
    p.add_argument("--years", type=float, default=100.0, help="campaign length")
    p.add_argument(
        "--intervals", type=float, nargs="+",
        default=[1.0, 8.0, 24.0, 72.0, 192.0], metavar="HOURS",
    )
    p.add_argument(
        "--mtbf-hours", type=float, default=None,
        help="also print the failure-aware sweep at this node MTBF",
    )
    p.add_argument(
        "--checkpoint-write-seconds", type=float, default=60.0,
        help="checkpoint write cost for the failure-aware sweep",
    )
    p.add_argument(
        "--restart-seconds", type=float, default=30.0,
        help="recovery cost for the failure-aware sweep",
    )
    add_telemetry_args(p)
    add_engine_args(p)
    add_scenario_args(p)

    p = sub.add_parser(
        "faults", help="seeded fault campaign: both pipelines, identical faults"
    )
    p.add_argument(
        "--mtbf-hours", type=float, default=6.0,
        help="node mean time between crashes (simulated hours)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="checkpoint cadence in pipeline outputs",
    )
    p.add_argument("--seed", type=int, default=57, help="fault-schedule seed")
    p.add_argument(
        "--interval", type=float, default=24.0, metavar="HOURS",
        help="sampling cadence (simulated hours)",
    )
    p.add_argument(
        "--months", type=float, default=6.0, help="campaign length (simulated months)"
    )
    p.add_argument(
        "--restart-penalty", type=float, default=30.0, metavar="SECONDS",
        help="fixed restart cost paid per recovery",
    )
    p.add_argument(
        "--brownout-rate", type=float, default=0.0, metavar="PER_HOUR",
        help="write-bandwidth brownout arrival rate",
    )
    p.add_argument(
        "--io-error-rate", type=float, default=0.0, metavar="PER_HOUR",
        help="transient I/O error arrival rate",
    )
    p.add_argument(
        "--no-unprotected", action="store_true",
        help="skip the unprotected (no-checkpoint) comparison runs",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    add_telemetry_args(p)
    add_engine_args(p)
    add_scenario_args(p)

    p = sub.add_parser(
        "run", help="execute a declarative scenario file (YAML or JSON)"
    )
    p.add_argument("path", help="scenario file")
    p.add_argument(
        "--set", action="append", default=[], metavar="KEY.PATH=VALUE",
        dest="overrides",
        help="override a scenario value before validation (repeatable), "
        "e.g. --set sampling.intervals_hours=[8,24]",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    add_telemetry_args(p)

    p = sub.add_parser(
        "scenario", help="validate/hash scenario files; check the gallery"
    )
    p.add_argument(
        "action", choices=("validate", "hash", "gallery"),
        help="'validate'/'hash' operate on files; 'gallery' re-validates "
        "the template gallery and diffs digests against its manifest",
    )
    p.add_argument("paths", nargs="*", help="scenario files (validate/hash)")
    p.add_argument(
        "--dir", default=None, metavar="DIR",
        help="gallery directory (default: scenarios/)",
    )
    p.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="digest manifest (default: <dir>/TEMPLATES.json)",
    )
    p.add_argument(
        "--update", action="store_true",
        help="gallery: rewrite the digest manifest after validating",
    )

    p = sub.add_parser("plan", help="Section VII advisor")
    p.add_argument("--years", type=float, default=100.0, help="campaign length")
    p.add_argument("--storage-gb", type=float, default=None, help="storage budget")
    p.add_argument("--energy-kwh", type=float, default=None, help="energy budget")
    p.add_argument("--time-hours", type=float, default=None, help="machine-time budget")
    p.add_argument(
        "--need-hours", type=float, default=None,
        help="required sampling cadence (simulated hours)",
    )

    p = sub.add_parser("report", help="write the full Markdown study report")
    p.add_argument("--output", default="study_report.md", help="output path")
    p.add_argument("--years", type=float, default=100.0, help="what-if horizon")
    add_telemetry_args(p)
    add_engine_args(p)

    p = sub.add_parser(
        "bench",
        help="execution-engine benchmark: serial vs parallel vs cached sweeps",
    )
    p.add_argument(
        "action", nargs="?", choices=("run", "history"), default="run",
        help="'run' (default) executes the sweep; 'history' inspects or "
        "gates on the trajectory ledger",
    )
    p.add_argument(
        "--history-path", default=None, metavar="PATH",
        help="trajectory ledger location "
        "(default: benchmarks/baselines/BENCH_history.jsonl)",
    )
    p.add_argument(
        "--append", action="store_true",
        help="history: append this run's record to the ledger",
    )
    p.add_argument(
        "--check", action="store_true",
        help="history: exit 2 when the run drifts beyond the MAD band of "
        "the last --window comparable records",
    )
    p.add_argument(
        "--window", type=int, default=10, metavar="N",
        help="history: trailing comparable records forming the band",
    )
    p.add_argument(
        "--mad-k", type=float, default=4.0, metavar="K",
        help="history: band half-width in consistency-scaled MAD units",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="history: check/append an existing BENCH_exec.json instead of "
        "re-running the sweep",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="the small CI sweep set instead of the full fig9/fig10 axes",
    )
    p.add_argument(
        "--output", default="benchmarks/results", metavar="DIR",
        help="directory for BENCH_exec.json and the text summary",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed baseline JSON; exit non-zero on regression",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional speedup drop vs the baseline",
    )
    p.add_argument("--json", action="store_true", help="print the report JSON")
    add_telemetry_args(p)
    add_engine_args(p)

    p = sub.add_parser("quality", help="eddy-tracking fidelity vs cadence")
    p.add_argument("--strides", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    p.add_argument("--steps", type=int, default=64)

    sub.add_parser("proportionality", help="storage/compute power tables")

    p = sub.add_parser("hypotheses", help="score the paper's three hypotheses")
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser(
        "obs",
        help="inspect telemetry run directories (summarize/dump/diff/report)",
        add_help=False,
    )
    p.add_argument(
        "rest", nargs=argparse.REMAINDER,
        help="arguments for repro.obs.cli (try `repro obs --help`)",
    )

    p = sub.add_parser(
        "profile", help="span-level energy attribution of a recorded run"
    )
    p.add_argument("path", help="telemetry directory (or its events file)")
    p.add_argument(
        "--flamegraph", default=None, metavar="PATH",
        help="write folded flamegraph stacks (name;name value) to PATH",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--check", action="store_true",
        help="verify energy conservation; exit 3 on violation",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.01,
        help="relative tolerance of the conservation check",
    )

    p = sub.add_parser("lint", help="run the project static-analysis pass")
    p.add_argument("paths", nargs="*", default=["src"], help="files/directories")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    p.add_argument("--select", default=None, help="comma-separated rule ids")
    p.add_argument("--disable", default=None, help="comma-separated rule ids")
    p.add_argument(
        "--baseline", choices=("write", "check"), default=None,
        help="known-debt baseline: snapshot findings or check against them",
    )
    p.add_argument(
        "--baseline-file", default=None, metavar="PATH",
        help="baseline location (default: .repro-lint-baseline.json)",
    )
    p.add_argument("--list-rules", action="store_true")
    return parser


def _engine(args: argparse.Namespace):
    """The execution engine an invocation asked for (None = default inline).

    Any supervision flag upgrades the plain engine to a
    :class:`~repro.exec.supervise.SupervisedExecutor`.
    """
    workers = getattr(args, "workers", None)
    cache_dir = getattr(args, "cache", None)
    supervise_flags = {
        "deadline_seconds": getattr(args, "deadline", None),
        "task_retries": getattr(args, "task_retries", None),
        "max_worker_crashes": getattr(args, "max_worker_crashes", None),
        "fail_policy": getattr(args, "fail_policy", None),
        "journal": getattr(args, "journal", None),
    }
    resume = bool(getattr(args, "resume", False))
    supervised = (
        bool(getattr(args, "supervise", False))
        or resume
        or any(v is not None for v in supervise_flags.values())
    )
    if workers is None and cache_dir is None and not supervised:
        return None
    from repro.exec.cache import DiskCache

    cache = DiskCache(cache_dir) if cache_dir is not None else None
    if not supervised:
        from repro.exec.engine import ExecutionEngine

        return ExecutionEngine(max_workers=workers, cache=cache)
    from repro.exec.supervise import SupervisedExecutor, TaskPolicy
    from repro.faults.retry import RetryPolicy

    defaults = TaskPolicy()
    retry = defaults.retry
    if supervise_flags["task_retries"] is not None:
        retry = RetryPolicy(
            max_attempts=supervise_flags["task_retries"],
            base_delay_seconds=retry.base_delay_seconds,
            backoff_factor=retry.backoff_factor,
            max_delay_seconds=retry.max_delay_seconds,
            jitter=retry.jitter,
        )
    policy = TaskPolicy(
        deadline_seconds=supervise_flags["deadline_seconds"],
        retry=retry,
        max_worker_crashes=(
            supervise_flags["max_worker_crashes"]
            if supervise_flags["max_worker_crashes"] is not None
            else defaults.max_worker_crashes
        ),
        fail_policy=(
            supervise_flags["fail_policy"]
            if supervise_flags["fail_policy"] is not None
            else defaults.fail_policy
        ),
    )
    return SupervisedExecutor(
        max_workers=workers,
        cache=cache,
        policy=policy,
        journal=supervise_flags["journal"],
        resume=resume,
    )


def _study(
    intervals: Sequence[float] = (8.0, 24.0, 72.0), engine=None
) -> CharacterizationStudy:
    print("running the characterization grid "
          f"({2 * len(intervals)} campaign-scale simulations)...", file=sys.stderr)
    if engine is not None:
        return run_characterization(intervals_hours=tuple(intervals), engine=engine)
    return run_characterization(intervals_hours=tuple(intervals))


def _emit_scenario(scenario, args: argparse.Namespace) -> bool:
    """Handle ``--emit-scenario PATH``: write the file, skip the run."""
    path = getattr(args, "emit_scenario", None)
    if path is None:
        return False
    from repro.scenario.loader import write_scenario

    write_scenario(scenario, path)
    print(f"wrote {path}")
    return True


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.scenario.build import scenario_from_args
    from repro.scenario.run import run_scenario

    scenario = scenario_from_args("characterize", args)
    if _emit_scenario(scenario, args):
        return 0
    return run_scenario(scenario, json_output=args.json)


def _cmd_calibrate(_args: argparse.Namespace) -> int:
    study = _study()
    result = study.calibrate()
    m = result.model
    print(f"t_sim = {m.t_sim_ref:.1f} s   (paper: 603 s)")
    print(f"alpha = {m.alpha:.2f} s/GB   (paper: 6.3 s/GB)")
    print(f"beta  = {m.beta:.2f} s/image (paper: 1.2 s/image)")
    print(f"power = {m.power_watts / 1e3:.1f} kW")
    print("held-out validation:")
    worst = 0.0
    for point, predicted, rel in study.validate():
        worst = max(worst, abs(rel))
        print(f"  {point.label:24s} measured {point.total_time:8.1f} s   "
              f"model {predicted:8.1f} s   error {100 * rel:+.2f}%")
    print(f"max |error| = {100 * worst:.2f}% (paper: <0.5%)")
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    from repro.scenario.build import scenario_from_args
    from repro.scenario.run import run_scenario

    scenario = scenario_from_args("whatif", args)
    if _emit_scenario(scenario, args):
        return 0
    return run_scenario(scenario)


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.scenario.build import scenario_from_args
    from repro.scenario.run import run_scenario

    scenario = scenario_from_args("faults", args)
    if _emit_scenario(scenario, args):
        return 0
    return run_scenario(scenario, json_output=args.json)


def _cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.scenario.loader import load_scenario
    from repro.scenario.run import run_scenario
    from repro.scenario.schema import PowerConfig

    scenario = load_scenario(args.path, overrides=tuple(args.overrides))
    # CLI telemetry flags override the scenario's telemetry section.
    telemetry = scenario.telemetry
    if args.telemetry is not None:
        telemetry = dataclasses.replace(telemetry, directory=args.telemetry)
    if args.no_timeline:
        telemetry = dataclasses.replace(telemetry, timeline=False)
    if args.timeline_interval is not None:
        telemetry = dataclasses.replace(
            telemetry, interval_seconds=args.timeline_interval
        )
    if args.store is not None:
        telemetry = dataclasses.replace(telemetry, store=args.store)
    if telemetry != scenario.telemetry:
        scenario = dataclasses.replace(scenario, telemetry=telemetry)
    if args.power_cap is not None:
        scenario = dataclasses.replace(
            scenario, power=PowerConfig(cap_watts=args.power_cap)
        )
    return run_scenario(
        scenario, json_output=args.json, argv=getattr(args, "_raw_argv", None)
    )


def _cmd_scenario(args: argparse.Namespace) -> int:
    import os

    from repro.scenario import gallery as scenario_gallery
    from repro.scenario.loader import load_scenario

    if args.action in ("validate", "hash"):
        if not args.paths:
            print("error: no scenario files given", file=sys.stderr)
            return 2
        for path in args.paths:
            scenario = load_scenario(path)
            if args.action == "hash":
                print(f"{scenario.content_digest()}  {path}")
            else:
                print(
                    f"ok {path} ({scenario.name}, "
                    f"digest {scenario.content_digest()[:12]})"
                )
        return 0
    directory = args.dir or scenario_gallery.DEFAULT_GALLERY_DIR
    manifest = args.manifest or (
        scenario_gallery.DEFAULT_MANIFEST
        if args.dir is None
        else os.path.join(directory, "TEMPLATES.json")
    )
    if args.update:
        payload = scenario_gallery.write_manifest(directory, manifest)
        print(f"wrote {manifest} ({len(payload['templates'])} template(s))")
        return 0
    problems = scenario_gallery.check_gallery(directory, manifest)
    if problems:
        for problem in problems:
            print(f"GALLERY: {problem}", file=sys.stderr)
        return 2
    n = len(scenario_gallery.gallery_paths(directory))
    print(f"gallery ok: {n} template(s) validated, digests match {manifest}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    study = _study()
    advisor = PipelineAdvisor(study.analyzer())
    constraints = Constraints(
        duration_seconds=years(args.years),
        storage_budget_gb=args.storage_gb,
        energy_budget_joules=(
            kwh_to_joules(args.energy_kwh) if args.energy_kwh is not None else None
        ),
        time_budget_seconds=(
            args.time_hours * 3_600.0 if args.time_hours is not None else None
        ),
        required_interval_hours=args.need_hours,
    )
    for pipeline in (IN_SITU, POST_PROCESSING):
        print(advisor.evaluate(pipeline, constraints).summary())
    best = advisor.recommend(constraints)
    pred = best.prediction
    print(f"\nrecommended: {best.pipeline} every {best.interval_hours:g} h")
    print(f"  machine time {pred.execution_time / 3_600:.1f} h, "
          f"energy {format_energy(pred.energy) if pred.energy else 'n/a'}, "
          f"storage {pred.s_io_gb:,.0f} GB")
    return 0 if best.feasible else 2


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import StudyReport

    study = _study(engine=_engine(args))
    n = StudyReport(study, whatif_years=args.years).write(args.output)
    print(f"wrote {args.output} ({n} bytes)")
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from repro.exec import history as hist

    path = args.history_path or hist.DEFAULT_HISTORY_PATH
    ledger = hist.load_history(path)
    if not args.check and not args.append:
        print(hist.render_history(ledger))
        return 0

    if args.report is not None:
        with open(args.report, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    else:
        from repro.exec.bench import run_bench, summary

        print(
            "running the bench sweep for the trajectory ledger...",
            file=sys.stderr,
        )
        report = run_bench(
            quick=args.quick,
            workers=args.workers,
            cache_dir=args.cache,
            output_dir=args.output,
        )
        print(summary(report))

    code = 0
    if args.check:
        checks = hist.check_drift(
            report, ledger, window=args.window, mad_k=args.mad_k
        )
        if not checks:
            print(
                f"bench history: fewer than {hist.MIN_RECORDS} comparable "
                "record(s) in the ledger — drift check is informational (pass)"
            )
        else:
            for check in checks:
                print(f"  {check.describe()}")
            problems = hist.drift_problems(checks)
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}", file=sys.stderr)
                code = 2
            else:
                print("drift check passed", file=sys.stderr)
    if args.append:
        hist.append_record(hist.history_record(report), path)
        print(f"appended to {path}", file=sys.stderr)
    return code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.exec.bench import compare_to_baseline, run_bench, summary, write_report

    if args.action == "history":
        return _cmd_bench_history(args)
    print(
        "benchmarking the execution engine (serial, parallel and cached "
        "sweeps over the fig3/fig9/fig10 set)...",
        file=sys.stderr,
    )
    report = run_bench(
        quick=args.quick,
        workers=args.workers,
        cache_dir=args.cache,
        output_dir=args.output,
    )
    path = write_report(report, args.output)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(summary(report))
    print(f"wrote {path}", file=sys.stderr)
    if args.baseline is not None:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare_to_baseline(report, baseline, tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 2
        print("baseline check passed", file=sys.stderr)
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    print("advancing the mini ocean and tracking eddies...", file=sys.stderr)
    results = evaluate_sampling_quality(strides=tuple(args.strides), n_steps=args.steps)
    print(quality_table(results))
    return 0


def _cmd_hypotheses(args: argparse.Namespace) -> int:
    from repro.core.hypotheses import evaluate_hypotheses, findings_summary

    study = _study()
    verdicts = evaluate_hypotheses(study)
    if args.json:
        print(json.dumps([v.to_dict() for v in verdicts], indent=2, sort_keys=True))
        return 0
    print(findings_summary(study))
    print()
    for verdict in verdicts:
        print(verdict.summary())
    return 0


def _cmd_proportionality(_args: argparse.Namespace) -> int:
    from repro.cluster.power import e5_2670_node

    print("storage rack (paper: 2273 -> 2302 W, +1.3%):")
    for throughput, watts in storage_power_sweep():
        print(f"  {throughput / 1e6:6.0f} MB/s  {watts:7.1f} W")
    node = e5_2670_node()
    print("compute cluster, 150 nodes (paper: 15 -> 44 kW, +193%):")
    for util in (0.0, 0.25, 0.5, 0.75, 1.0):
        print(f"  util {util:4.2f}  {150 * node.power(util) / 1e3:6.1f} kW")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.cli import main as obs_main

    return obs_main(list(args.rest))


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.profile import profile_directory, render_text, write_flamegraph

    try:
        result = profile_directory(args.path)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_text(result))
    if args.flamegraph is not None:
        write_flamegraph(result, args.flamegraph)
        print(f"wrote {args.flamegraph}", file=sys.stderr)
    if args.check:
        problems = result.conservation_errors(rtol=args.tolerance)
        if problems:
            for problem in problems:
                print(f"CONSERVATION: {problem}", file=sys.stderr)
            return 3
        print("conservation check passed", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.disable:
        argv += ["--disable", args.disable]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.baseline_file:
        argv += ["--baseline-file", args.baseline_file]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


_COMMANDS = {
    "characterize": _cmd_characterize,
    "calibrate": _cmd_calibrate,
    "whatif": _cmd_whatif,
    "faults": _cmd_faults,
    "run": _cmd_run,
    "scenario": _cmd_scenario,
    "plan": _cmd_plan,
    "quality": _cmd_quality,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "proportionality": _cmd_proportionality,
    "hypotheses": _cmd_hypotheses,
    "obs": _cmd_obs,
    "profile": _cmd_profile,
    "lint": _cmd_lint,
}


def _report_sweep_failure(exc) -> int:
    """Structured stderr summary of a failed supervised sweep; exit 3."""
    print(f"error: {exc}", file=sys.stderr)
    for record in exc.failures:
        attempts = record.get("attempts") or []
        print(
            f"  task failed ({record.get('kind', 'unknown')}, "
            f"{len(attempts)} attempt(s)"
            f"{', quarantined' if record.get('quarantined') else ''}): "
            f"{record.get('error', '')}",
            file=sys.stderr,
        )
    print(
        "hint: re-run with --journal/--resume to retry only the failures, "
        "or --fail-policy skip to keep partial results",
        file=sys.stderr,
    )
    return 3


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.errors import ConfigurationError, SweepError

    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "obs":
        # Forward everything verbatim (argparse.REMAINDER drops a leading
        # option like `obs --help`, so bypass the outer parser entirely).
        from repro.obs.cli import main as obs_main

        return obs_main(raw[1:])
    args = build_parser().parse_args(raw)
    args._raw_argv = raw
    if getattr(args, "resume", False) and (
        getattr(args, "journal", None) is None or getattr(args, "cache", None) is None
    ):
        print("error: --resume needs both --journal and --cache", file=sys.stderr)
        return 2
    handler = _COMMANDS[args.command]
    telemetry = getattr(args, "telemetry", None)
    if args.command == "run" or getattr(args, "emit_scenario", None) is not None:
        # `repro run` opens its own session (label = the experiment kind, so
        # traces match the legacy command); --emit-scenario only writes a file.
        telemetry = None
    store = getattr(args, "store", None)
    try:
        if telemetry is None:
            if store is not None and args.command != "run":
                print("error: --store needs --telemetry", file=sys.stderr)
                return 2
            return handler(args)
        # "store" stays out of the session config: the registry stamp added
        # at ingest time is the durable record, and store-off runs must keep
        # byte-identical manifests.
        config = {
            k: v
            for k, v in vars(args).items()
            if k not in ("command", "telemetry", "store")
        }
        timeline = None
        if not getattr(args, "no_timeline", False):
            timeline = obs.TimelineConfig(
                interval_seconds=getattr(args, "timeline_interval", None),
                power_cap_watts=getattr(args, "power_cap", None),
            )
        with obs.session(
            telemetry,
            label=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            config=config,
            timeline=timeline,
        ):
            code = handler(args)
        if store is not None:
            # After the session closed: ingest reads the freshly written
            # manifest, and the stamp rewrites it with the store verdict.
            from repro.obs.store.core import RunStore

            result = RunStore(store).ingest(telemetry)
            print(f"store: {result.describe()}", file=sys.stderr)
        return code
    except SweepError as exc:
        return _report_sweep_failure(exc)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
