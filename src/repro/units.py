"""Unit helpers used throughout the library.

The internal convention is strict:

* time      — seconds (wall-clock) and *simulated* seconds for the ocean
              calendar; both plain ``float``
* data size — bytes (``int`` where exact, ``float`` for modelled estimates)
* power     — watts
* energy    — joules

Everything else (GB, MWh, simulated days...) exists only at the API surface
through the converters below, so arithmetic inside the library never mixes
units.  The constants use decimal (SI) prefixes for data sizes, matching the
paper's use of "GB" for storage volumes and "MB/s" for Lustre bandwidth.
"""

from __future__ import annotations

import math

__all__ = [
    "KB", "MB", "GB", "TB",
    "MINUTE", "HOUR", "DAY", "MONTH", "YEAR",
    "kb_to_bytes", "mb_to_bytes", "gb_to_bytes", "tb_to_bytes",
    "bytes_to_gb", "bytes_to_tb",
    "joules_to_kwh", "kwh_to_joules", "joules_to_mwh",
    "watts_to_kw", "kw_to_watts",
    "seconds", "minutes", "hours", "days", "months", "years",
    "format_bytes", "format_seconds", "format_power", "format_energy",
]

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

MINUTE = 60.0
HOUR = 3_600.0
DAY = 86_400.0
#: The paper's "six simulated months" with 30-minute timesteps works out to
#: 8640 timesteps, i.e. a 30-day month; we adopt the same convention.
MONTH = 30 * DAY
YEAR = 365 * DAY


def kb_to_bytes(kb: float) -> float:  # repro-unit: bytes, kb=kb
    """Convert kilobytes (decimal) to bytes."""
    return kb * KB


def mb_to_bytes(mb: float) -> float:  # repro-unit: bytes, mb=mb
    """Convert megabytes (decimal) to bytes."""
    return mb * MB


def gb_to_bytes(gb: float) -> float:  # repro-unit: bytes, gb=gb
    """Convert gigabytes (decimal) to bytes."""
    return gb * GB


def tb_to_bytes(tb: float) -> float:  # repro-unit: bytes, tb=tb
    """Convert terabytes (decimal) to bytes."""
    return tb * TB


def bytes_to_gb(n: float) -> float:  # repro-unit: gb, n=bytes
    """Convert bytes to gigabytes (decimal)."""
    return n / GB


def bytes_to_tb(n: float) -> float:  # repro-unit: tb, n=bytes
    """Convert bytes to terabytes (decimal)."""
    return n / TB


def joules_to_kwh(j: float) -> float:  # repro-unit: kwh, j=joules
    """Convert joules to kilowatt-hours."""
    return j / 3.6e6


def kwh_to_joules(kwh: float) -> float:  # repro-unit: joules, kwh=kwh
    """Convert kilowatt-hours to joules."""
    return kwh * 3.6e6


def joules_to_mwh(j: float) -> float:  # repro-unit: mwh, j=joules
    """Convert joules to megawatt-hours."""
    return j / 3.6e9


def watts_to_kw(w: float) -> float:  # repro-unit: kw, w=watts
    """Convert watts to kilowatts."""
    return w / 1_000.0


def kw_to_watts(kw: float) -> float:  # repro-unit: watts, kw=kw
    """Convert kilowatts to watts."""
    return kw * 1_000.0


def seconds(s: float) -> float:  # repro-unit: seconds, s=seconds
    """Identity, for symmetry at call sites that mix units."""
    return float(s)


def minutes(m: float) -> float:  # repro-unit: seconds, m=minutes
    """Convert minutes to seconds."""
    return m * MINUTE


def hours(h: float) -> float:  # repro-unit: seconds, h=hours
    """Convert hours to seconds."""
    return h * HOUR


def days(d: float) -> float:  # repro-unit: seconds, d=days
    """Convert days to seconds."""
    return d * DAY


def months(m: float) -> float:  # repro-unit: seconds, m=months
    """Convert simulated months (30 days, the paper's convention) to seconds."""
    return m * MONTH


def years(y: float) -> float:  # repro-unit: seconds, y=years
    """Convert years (365 days) to seconds."""
    return y * YEAR


def format_bytes(n: float) -> str:  # repro-unit: n=bytes
    """Human-readable decimal size string, e.g. ``'230.0 GB'``."""
    if n != n:  # NaN
        return "nan"
    neg = n < 0
    n = abs(n)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "kB")):
        if n >= unit:
            return f"{'-' if neg else ''}{n / unit:.1f} {name}"
    return f"{'-' if neg else ''}{n:.0f} B"


def format_seconds(s: float) -> str:  # repro-unit: s=seconds
    """Human-readable duration string, e.g. ``'21m 02s'``."""
    if s != s or math.isinf(s):
        return str(s)
    neg = s < 0
    s = abs(s)
    if s < 60:
        return f"{'-' if neg else ''}{s:.1f}s"
    m, sec = divmod(s, 60.0)
    if m < 60:
        return f"{'-' if neg else ''}{int(m)}m {sec:04.1f}s"
    h, m = divmod(m, 60.0)
    return f"{'-' if neg else ''}{int(h)}h {int(m)}m {sec:04.1f}s"


def format_power(w: float) -> str:  # repro-unit: w=watts
    """Human-readable power string, e.g. ``'46.3 kW'``."""
    if abs(w) >= 1e6:
        return f"{w / 1e6:.2f} MW"
    if abs(w) >= 1e3:
        return f"{w / 1e3:.1f} kW"
    return f"{w:.0f} W"


def format_energy(j: float) -> str:  # repro-unit: j=joules
    """Human-readable energy string, e.g. ``'16.2 kWh'``."""
    kwh = joules_to_kwh(j)
    if abs(kwh) >= 1_000:
        return f"{kwh / 1_000:.2f} MWh"
    if abs(kwh) >= 1:
        return f"{kwh:.1f} kWh"
    return f"{j / 1e3:.1f} kJ" if abs(j) >= 1e3 else f"{j:.0f} J"
