"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the subsystem that failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "ResourceError",
    "StorageError",
    "StorageFullError",
    "TransientIOError",
    "FileFormatError",
    "CalibrationError",
    "ModelError",
    "PipelineError",
    "MeterError",
    "ConfigurationError",
    "FaultError",
    "Interrupt",
    "NodeCrashError",
    "OperationTimeoutError",
    "RetryExhaustedError",
    "SweepError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with inconsistent or out-of-range parameters."""


class SimulationError(ReproError):
    """The discrete-event engine reached an invalid state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class ResourceError(SimulationError):
    """Misuse of a simulated resource (double release, negative request...)."""


class StorageError(ReproError):
    """A simulated storage operation failed."""


class StorageFullError(StorageError):
    """A write would exceed the capacity of the storage cluster."""


class FileFormatError(ReproError):
    """An nclite container or PNG stream is malformed."""


class CalibrationError(ReproError):
    """The model calibration system is singular or ill-conditioned."""


class ModelError(ReproError):
    """A model query was made outside the model's domain of validity."""


class PipelineError(ReproError):
    """A visualization pipeline was driven through an invalid sequence."""


class MeterError(ReproError):
    """A power meter was sampled outside the recorded window."""


class TransientIOError(StorageError):
    """A storage operation failed in a way a retry may fix (injected faults).

    This is the *retryable* storage failure: :class:`~repro.faults.RetryPolicy`
    re-attempts operations that raise it, while permanent failures such as
    :class:`StorageFullError` propagate immediately.
    """


class FaultError(ReproError):
    """Base class for injected-failure and resilience errors."""


class Interrupt(FaultError):
    """Thrown into a DES process by :meth:`~repro.events.engine.Process.interrupt`.

    ``cause`` carries whatever the interruptor passed (may be ``None``).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class NodeCrashError(FaultError):
    """A compute-node crash killed the in-flight pipeline attempt.

    Recoverable through checkpoint/restart (see :mod:`repro.faults`); fatal
    when no checkpoint policy is active.
    """


class OperationTimeoutError(FaultError):
    """A storage/IO operation exceeded its per-operation timeout."""


class RetryExhaustedError(FaultError):
    """A retried operation failed on every allowed attempt."""


class SweepError(ReproError):
    """A supervised sweep settled with one or more failed tasks.

    Raised by the ``abort`` fail-policy (and by aggregators like
    ``run_characterization`` that cannot tolerate missing cells).
    ``failures`` holds the structured per-task failure records; ``results``
    the full result list (failed entries carry ``RunResult.failure``).
    """

    def __init__(self, message: str, failures=None, results=None) -> None:
        super().__init__(message)
        self.failures = list(failures or [])
        self.results = list(results or [])
