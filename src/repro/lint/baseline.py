"""Known-debt baselines: land a new rule family without a big-bang sweep.

A baseline is a committed JSON file recording the findings a tree is
*allowed* to have.  ``repro lint --baseline write`` snapshots the current
findings; ``--baseline check`` subtracts the snapshot from a fresh run
and only fails on findings *not* in it.

Entries are matched by ``(path, rule, message)`` with a count — line
numbers are deliberately excluded so unrelated edits above a baselined
finding don't break CI.  Two extra guarantees keep baselines honest:

* matching is count-bounded: a baseline entry with ``count: 1`` absorbs
  one finding, not every future duplicate;
* entries that no longer match anything are reported (exit code stays
  0) so the file can be shrunk as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Finding

__all__ = [
    "BaselineCheck",
    "DEFAULT_BASELINE_FILE",
    "check_baseline",
    "load_baseline",
    "write_baseline",
]

#: The committed baseline location used by the CLI default.
DEFAULT_BASELINE_FILE = ".repro-lint-baseline.json"

#: Format marker so future shape changes can migrate old files.
_SCHEMA_VERSION = 1

_Key = Tuple[str, str, str]


def _key(path: str, rule: str, message: str) -> _Key:
    return (Path(path).as_posix(), rule, message)


def write_baseline(findings: Sequence[Finding], path: Path) -> int:
    """Snapshot ``findings`` into ``path``; returns the entry count."""
    counts: Dict[_Key, int] = {}
    for finding in sorted(findings):
        counts[_key(finding.path, finding.rule, finding.message)] = (
            counts.get(_key(finding.path, finding.rule, finding.message), 0) + 1
        )
    entries = [
        {"path": p, "rule": r, "message": m, "count": n}
        for (p, r, m), n in sorted(counts.items())
    ]
    document = {"schema_version": _SCHEMA_VERSION, "entries": entries}
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: Path) -> Dict[_Key, int]:
    """Read a baseline file into its ``(path, rule, message) → count`` map."""
    document = json.loads(path.read_text(encoding="utf-8"))
    entries = document.get("entries", [])
    out: Dict[_Key, int] = {}
    for entry in entries:
        key = _key(entry["path"], entry["rule"], entry["message"])
        out[key] = out.get(key, 0) + int(entry.get("count", 1))
    return out


@dataclass
class BaselineCheck:
    """Outcome of subtracting a baseline from a findings list."""

    #: Findings not absorbed by the baseline — these should fail CI.
    new: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (debt already paid).
    stale: List[_Key] = field(default_factory=list)
    #: How many findings the baseline absorbed.
    suppressed: int = 0


def check_baseline(findings: Sequence[Finding], path: Path) -> BaselineCheck:
    """Split ``findings`` into new-vs-baselined against the file at ``path``."""
    remaining = load_baseline(path)
    result = BaselineCheck()
    for finding in sorted(findings):
        key = _key(finding.path, finding.rule, finding.message)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            result.suppressed += 1
        else:
            result.new.append(finding)
    result.stale = sorted(k for k, n in remaining.items() if n > 0)
    return result
