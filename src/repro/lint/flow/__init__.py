"""Flow-sensitive dimensional and determinism analysis (``repro.lint.flow``).

This package layers a small abstract interpreter on top of the per-file
lint engine:

* :mod:`repro.lint.flow.dims` — the dimension algebra.  A :class:`Unit`
  carries base-dimension exponents over seconds / bytes / joules plus an
  optional scale (gigabytes are ``bytes`` scaled by 1e9), so the analyzer
  can both reject ``watts + joules`` and notice that W · s = J.
* :mod:`repro.lint.flow.summaries` — whole-package function summaries.
  Every module reachable from the linted file's package root is parsed
  once (mtime-cached) into parameter/return units derived from unit
  suffixes (``_j``, ``_w``, ``_s``, ``_bytes``, ``_gb``, ...), compound
  ``_per_`` names and ``# repro-unit:`` annotations; call sites resolve
  through imports, ``self`` and module aliases, which is what makes the
  dimensional rules inter-procedural.
* :mod:`repro.lint.flow.dataflow` — the per-function dataflow that
  propagates units through assignments, arithmetic, returns and calls
  and emits the ``dim-*`` findings.
* :mod:`repro.lint.flow.determinism` — taint-style checks for the
  hazards that break bit-identical replay (the ``det-*`` findings).
* :mod:`repro.lint.flow.rules` — the :class:`repro.lint.engine.Rule`
  subclasses that expose both families to the engine.
"""

from __future__ import annotations

from repro.lint.flow.dataflow import flow_findings
from repro.lint.flow.dims import (
    DIMENSIONLESS,
    Unit,
    parse_unit_spec,
    scan_unit_annotations,
    unit_of_name,
)
from repro.lint.flow.summaries import (
    FunctionSummary,
    ModuleSummary,
    PackageIndex,
    index_for,
)

__all__ = [
    "DIMENSIONLESS",
    "FunctionSummary",
    "ModuleSummary",
    "PackageIndex",
    "Unit",
    "flow_findings",
    "index_for",
    "parse_unit_spec",
    "scan_unit_annotations",
    "unit_of_name",
]
