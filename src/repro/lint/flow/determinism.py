"""Taint-style determinism checks — the ``det-*`` findings.

The repo's hardest invariant is that serial, parallel, cached and
fault-replayed runs are bit-identical (PRs 3-5).  Four rule families
catch the classic ways code silently breaks that:

* ``det-seed`` — use of the *module-level* RNG APIs (``random.random()``,
  ``np.random.rand()``): global RNG state cannot be replayed across
  worker processes; a seeded generator object can.
* ``det-clock`` — a wall-clock reading (``time.time()``,
  ``datetime.now()``...) flowing into simulation state, an RNG seed, an
  event-scheduling call or a cache key.  Telemetry timestamps are fine —
  they never reach those sinks.
* ``det-iter`` — iterating a ``set`` (or ``os.listdir``) into an
  order-sensitive sink: float accumulation, ``list.append``, heap pushes
  or event scheduling.  Hash order varies across processes under
  ``PYTHONHASHSEED``; ``sorted(...)`` washes the taint.
* ``det-env`` — process-identity values (``os.getpid()``, ``os.environ``,
  ``uuid.uuid4()``, hostnames) reaching a ``RunRequest``/``RunResult``
  payload, a seed, or a cache key.

Taint propagates forward through assignments and expressions within a
function (module level included); a value is tainted if any of its
sub-expressions is.  Branches are not split — union-taint is the
conservative right answer for "may this ever flow there".
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import FileContext, Finding

__all__ = ["determinism_findings"]

#: Module-level RNG sampler names worth flagging on ``random.<name>``.
_RANDOM_SAMPLERS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "binomialvariate",
}

#: Ditto for ``np.random.<name>`` (legacy global-state API).
_NP_SAMPLERS = {
    "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "uniform", "normal", "standard_normal", "choice",
    "shuffle", "permutation", "exponential", "poisson", "binomial",
    "beta", "gamma", "lognormal", "laplace", "random_integers",
}

#: ``(module, attr)`` wall-clock sources.
_CLOCK_SOURCES = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: ``(module, attr)`` process-identity sources.
_ENV_SOURCES = {
    ("os", "getpid"), ("os", "getppid"), ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("socket", "gethostname"), ("platform", "node"),
}

#: Constructors whose argument is an RNG seed.
_SEED_CALLS = {"seed", "default_rng", "Random", "RandomState", "SeedSequence"}

#: Callee name fragments that mean "this schedules a simulation event".
_SCHEDULE_FRAGMENTS = ("schedule", "heappush")

#: Payload classes of the execution API.
_PAYLOAD_CLASSES = {"RunRequest", "RunResult"}

#: Builtin calls that erase iteration-order sensitivity.
_ORDER_WASHERS = {"sorted", "len", "sum", "min", "max", "frozenset", "set"}


class _Taint:
    """One tainted value: which family and which source expression."""

    __slots__ = ("kind", "source")

    def __init__(self, kind: str, source: str) -> None:
        self.kind = kind  # "clock" | "env"
        self.source = source


class _Scope:
    """Forward taint pass over one function (or the module body)."""

    def __init__(self, analysis: "DeterminismAnalysis") -> None:
        self.a = analysis
        self.tainted: Dict[str, _Taint] = {}
        self.set_vars: Set[str] = set()

    # -- sources -----------------------------------------------------------

    def _call_source(self, node: ast.Call) -> Optional[_Taint]:
        """The taint a bare call introduces, if it is a known source."""
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            attr = func.attr
            base_name = _tail_name(base)
            if base_name is not None:
                if (base_name, attr) in _CLOCK_SOURCES:
                    return _Taint("clock", f"{base_name}.{attr}()")
                if (base_name, attr) in _ENV_SOURCES:
                    return _Taint("env", f"{base_name}.{attr}()")
                if base_name in ("environ",) or (
                    base_name == "os" and attr in ("getenv",)
                ):
                    return _Taint("env", f"os.{attr}()")
                if base_name == "environ" and attr == "get":
                    return _Taint("env", "os.environ.get()")
        return None

    def _expr_taint(self, node: ast.AST) -> Optional[_Taint]:
        """Taint of an expression: any tainted sub-expression taints it."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.tainted:
                return self.tainted[sub.id]
            if isinstance(sub, ast.Call):
                taint = self._call_source(sub)
                if taint is not None:
                    return taint
            if isinstance(sub, ast.Subscript):
                name = _dotted(sub.value)
                if name in ("os.environ",):
                    return _Taint("env", "os.environ[...]")
            if isinstance(sub, ast.Attribute):
                dotted = _dotted(sub)
                if dotted in ("sys.argv",):
                    return _Taint("env", dotted)
        return None

    # -- set tracking for det-iter ----------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
            ):
                return self._is_set_expr(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _unordered_iter(self, node: ast.AST) -> Optional[str]:
        """Why iterating ``node`` is order-unstable, or None."""
        if self._is_set_expr(node):
            return "set"
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in ("os.listdir", "os.scandir", "glob.glob", "glob.iglob"):
                return dotted
        return None

    # -- sinks -------------------------------------------------------------

    def _check_call_sinks(self, node: ast.Call) -> None:
        callee = _call_name(node) or ""
        dotted_callee = _dotted(node.func) or callee
        all_args: List[Tuple[Optional[str], ast.AST]] = [
            (None, a) for a in node.args if not isinstance(a, ast.Starred)
        ] + [(k.arg, k.value) for k in node.keywords if k.arg is not None]

        is_seed_call = callee in _SEED_CALLS
        is_schedule = any(f in callee.lower() for f in _SCHEDULE_FRAGMENTS)
        is_payload = callee in _PAYLOAD_CLASSES
        is_cache = "cache" in callee.lower() or callee.lower().endswith("key")

        for kw, arg in all_args:
            taint = self._expr_taint(arg)
            if taint is None:
                if kw == "seed":
                    continue
                continue
            if kw == "seed" or is_seed_call:
                self.a.report(
                    f"det-{taint.kind}", node,
                    f"{taint.source} flows into RNG seed "
                    f"`{dotted_callee}(...)`; a replay would draw a "
                    "different stream — derive seeds from the run config",
                )
            elif is_schedule and taint.kind == "clock":
                self.a.report(
                    "det-clock", node,
                    f"{taint.source} flows into event scheduling "
                    f"`{dotted_callee}(...)`; simulation time must come "
                    "from the simulator clock, not the wall clock",
                )
            elif is_payload:
                self.a.report(
                    f"det-{taint.kind}", node,
                    f"{taint.source} flows into `{callee}(...)`; "
                    "payloads must be reproducible for cache keys and "
                    "bit-identical replay",
                )
            elif is_cache:
                self.a.report(
                    f"det-{taint.kind}", node,
                    f"{taint.source} flows into cache-key computation "
                    f"`{dotted_callee}(...)`; cached and fresh runs would "
                    "diverge",
                )

    def _check_seed_rule(self, node: ast.Call) -> None:
        """det-seed: module-level RNG sampler calls."""
        func = node.func
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is None:
                return
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] in self.a.random_aliases:
                if parts[1] in _RANDOM_SAMPLERS:
                    self.a.report(
                        "det-seed", node,
                        f"module-level `{dotted}()` uses global RNG state; "
                        "use a seeded `random.Random(seed)` instance so "
                        "parallel/replayed runs draw identical streams",
                    )
            elif (
                len(parts) >= 2
                and parts[-2] == "random"
                and (parts[0] in self.a.numpy_aliases or parts[0] == "numpy")
                and parts[-1] in _NP_SAMPLERS
            ):
                self.a.report(
                    "det-seed", node,
                    f"legacy global-state `{dotted}()`; use "
                    "`np.random.default_rng(seed)` so parallel/replayed "
                    "runs draw identical streams",
                )
        elif isinstance(func, ast.Name):
            if func.id in self.a.random_from_imports:
                self.a.report(
                    "det-seed", node,
                    f"module-level `{func.id}()` (from random import ...) uses "
                    "global RNG state; use a seeded `random.Random(seed)` "
                    "instance",
                )

    def _check_assign_sinks(self, target: ast.AST, taint: _Taint, node: ast.AST) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Subscript):
            container = _tail_name(target.value)
            if container is not None and "payload" in container.lower():
                self.a.report(
                    f"det-{taint.kind}", node,
                    f"{taint.source} stored into `{container}[...]`; "
                    "payload contents must be reproducible",
                )
            return
        if name is None:
            return
        lowered = name.lower()
        if lowered == "seed" or lowered.endswith("_seed"):
            self.a.report(
                f"det-{taint.kind}", node,
                f"{taint.source} assigned to `{name}`; seeds must come "
                "from the run configuration to replay bit-identically",
            )
        elif "key" in lowered and ("cache" in lowered or lowered.endswith("key")):
            self.a.report(
                f"det-{taint.kind}", node,
                f"{taint.source} assigned to `{name}`; cache keys must not "
                "depend on wall clock or process identity",
            )
        elif lowered.startswith("sim_") or lowered == "sim":
            if taint.kind == "clock":
                self.a.report(
                    "det-clock", node,
                    f"{taint.source} assigned to simulation state `{name}`; "
                    "simulated time must advance from the event engine only",
                )

    # -- statement walk ----------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own pass
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            taint = self._expr_taint(stmt.value)
            is_set = self._is_set_expr(stmt.value)
            for target in stmt.targets:
                if taint is not None:
                    self._check_assign_sinks(target, taint, stmt)
                for name in _target_names(target):
                    if taint is not None:
                        self.tainted[name] = taint
                    else:
                        self.tainted.pop(name, None)
                    if is_set:
                        self.set_vars.add(name)
                    else:
                        self.set_vars.discard(name)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._visit_expr(stmt.value)
            taint = self._expr_taint(stmt.value)
            if taint is not None:
                self._check_assign_sinks(stmt.target, taint, stmt)
                for name in _target_names(stmt.target):
                    self.tainted[name] = taint
            if self._is_set_expr(stmt.value) and isinstance(stmt.target, ast.Name):
                self.set_vars.add(stmt.target.id)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            taint = self._expr_taint(stmt.value)
            if taint is not None:
                for name in _target_names(stmt.target):
                    self.tainted[name] = taint
            return
        if isinstance(stmt, ast.For):
            self._visit_expr(stmt.iter)
            reason = self._unordered_iter(stmt.iter)
            if reason is not None:
                sink = _order_sensitive_sink(stmt.body)
                if sink is not None:
                    self.a.report(
                        "det-iter", stmt,
                        f"iterating {reason} feeds {sink}; hash order varies "
                        "across processes — iterate `sorted(...)` instead",
                    )
            for block in (stmt.body, stmt.orelse):
                self.run(block)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._visit_expr(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._visit_expr(item.context_expr)
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Assert):
            self._visit_expr(stmt.test)
            return

    def _visit_expr(self, node: ast.AST) -> None:
        """Check every call in an expression tree for sink violations."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._check_seed_rule(sub)
                self._check_call_sinks(sub)
            elif isinstance(sub, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                for gen in sub.generators:
                    reason = self._unordered_iter(gen.iter)
                    if reason is not None and _is_float_reduction(node, sub):
                        self.a.report(
                            "det-iter", sub,
                            f"reducing over {reason} iteration; hash order "
                            "varies across processes — iterate "
                            "`sorted(...)` instead",
                        )


class DeterminismAnalysis:
    """File-level driver: alias tables + one :class:`_Scope` per function."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.random_from_imports: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "random":
                        self.random_aliases.add(local)
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(local.split(".", 1)[0]
                                               if alias.asname is None else local)
                    elif alias.name == "numpy.random":
                        self.numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _RANDOM_SAMPLERS:
                        self.random_from_imports.add(alias.asname or alias.name)

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(self.ctx.finding(rule, node, message))

    def run(self) -> List[Finding]:
        module_scope = _Scope(self)
        module_scope.run(self.ctx.tree.body)
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = _Scope(self)
                scope.run(node.body)
        return self.findings


def _tail_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _target_names(target: ast.AST) -> List[str]:
    out: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            out.append(node.id)
    return out


def _order_sensitive_sink(body: Sequence[ast.stmt]) -> Optional[str]:
    """The first order-sensitive operation in a loop body, described."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return f"`{_describe_target(node.target)} +=` accumulation"
            if isinstance(node, ast.Call):
                name = _call_name(node) or ""
                if any(f in name.lower() for f in _SCHEDULE_FRAGMENTS):
                    return f"event scheduling (`{name}`)"
                if name == "append" and isinstance(node.func, ast.Attribute):
                    return f"`{_dotted(node.func)}(...)` ordering"
    return None


def _describe_target(node: ast.AST) -> str:
    dotted = _dotted(node)
    return dotted if dotted is not None else "<target>"


def _is_float_reduction(outer: ast.AST, comp: ast.AST) -> bool:
    """True when the comprehension feeds ``sum``/``fsum`` directly."""
    for node in ast.walk(outer):
        if isinstance(node, ast.Call) and node.args and node.args[0] is comp:
            name = _call_name(node)
            if name in ("sum", "fsum"):
                return True
    return False


def determinism_findings(ctx: FileContext) -> List[Finding]:
    """All ``det-*`` findings for one file."""
    return DeterminismAnalysis(ctx).run()
