"""Engine bindings: one :class:`~repro.lint.engine.Rule` per flow family.

All seven rules share a single analysis pass per file (cached on the
:class:`~repro.lint.engine.FileContext` by
:func:`~repro.lint.flow.dataflow.flow_findings`); each rule simply
filters the cached findings down to its own id, so ``--select``,
``--disable`` and suppression comments work per-family exactly like
they do for the pattern rules.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.engine import FileContext, Finding, Rule, register
from repro.lint.flow.dataflow import flow_findings

__all__ = [
    "DetClockRule",
    "DetEnvRule",
    "DetIterRule",
    "DetSeedRule",
    "DimArgRule",
    "DimMixRule",
    "DimReturnRule",
]


class _FlowRule(Rule):
    """Shared filter over the per-file flow analysis."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield this family's findings from the shared flow pass."""
        for finding in flow_findings(ctx):
            if finding.rule == self.id:
                yield finding


@register
class DimMixRule(_FlowRule):
    """Dimension-mixing additive arithmetic, comparisons and assignments."""

    id = "dim-mix"
    summary = (
        "flow-inferred dimensions clash across +/-/comparison/assignment "
        "(e.g. seconds combined with bytes, or hours with seconds)"
    )


@register
class DimArgRule(_FlowRule):
    """Wrong-dimension argument at a resolved call boundary."""

    id = "dim-arg"
    summary = (
        "call argument's inferred unit clashes with the callee parameter's "
        "declared unit (inter-procedural, via function summaries)"
    )


@register
class DimReturnRule(_FlowRule):
    """Function name promises one unit, dataflow returns another."""

    id = "dim-return"
    summary = (
        "function whose name/annotation promises one unit returns a value "
        "whose inferred unit differs"
    )


@register
class DetSeedRule(_FlowRule):
    """Module-level (global-state) RNG use."""

    id = "det-seed"
    summary = (
        "module-level random/np.random sampler uses global RNG state that "
        "cannot be replayed; use a seeded generator instance"
    )


@register
class DetClockRule(_FlowRule):
    """Wall clock flowing into simulation state, seeds or cache keys."""

    id = "det-clock"
    summary = (
        "wall-clock reading flows into simulation state, an RNG seed, "
        "event scheduling or a cache key"
    )


@register
class DetIterRule(_FlowRule):
    """Unordered iteration feeding order-sensitive accumulation."""

    id = "det-iter"
    summary = (
        "set/listdir iteration feeds float accumulation, list building or "
        "event scheduling; hash order varies across processes"
    )


@register
class DetEnvRule(_FlowRule):
    """Process identity reaching payloads, seeds or cache keys."""

    id = "det-env"
    summary = (
        "pid/env/uuid/hostname value reaches a RunRequest/RunResult "
        "payload, an RNG seed or a cache key"
    )
