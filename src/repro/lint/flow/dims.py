"""The dimension algebra behind the ``dim-*`` rules.

A :class:`Unit` is a vector of integer exponents over three base
dimensions — time (``s``), data (``B``) and energy (``J``) — plus an
optional *scale* giving the multiplier to the canonical unit of that
dimension vector.  Gigabytes are ``(B,)`` scaled by 1e9; watts are
``(J, s^-1)`` scaled by 1; kilowatt-hours are ``(J,)`` scaled by 3.6e6.
Power is deliberately derived (J/s) so the algebra knows W · s = J and
J / s = W without special cases.

Three judgement calls keep the analysis precise on real code:

* Numeric literals are *transparent* (``literal=True``): they combine
  with anything under ``+``/``-``/comparison without a finding, and a
  literal factor preserves the other operand's dimensions while
  *erasing its scale* — so ``t_hours * 3600`` is still time, but no
  longer claims to be hours, and adding it to seconds is clean.
* Conversion constants (``repro.units.HOUR``, ``GB``, ...) are marked
  with ``conv_family``.  Multiplied against a value that already
  carries their family (``months * MONTH``) they behave like a literal
  (a unit conversion); against anything else (``watts * DAY``) they
  behave like the canonical quantity (a day of seconds), which is how
  W × day correctly lands on energy.
* A scale of ``None`` means "dimension known, unit unknown"; scale
  mismatches are only reported when both sides are certain.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DIMENSIONLESS",
    "LITERAL",
    "Unit",
    "parse_unit_spec",
    "scan_unit_annotations",
    "unit_of_name",
]

#: Base dimension symbols: seconds, bytes, joules.
TIME = (("s", 1),)
DATA = (("B", 1),)
ENERGY = (("J", 1),)
POWER = (("J", 1), ("s", -1))

Dims = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class Unit:
    """One inferred physical unit: dimension exponents plus optional scale."""

    dims: Dims = ()
    #: Multiplier to the canonical unit (seconds/bytes/joules); None = unknown.
    scale: Optional[float] = None
    #: Human-readable name used in findings, e.g. ``"hours"``.
    label: str = ""
    #: True for bare numeric literals (transparent in the algebra).
    literal: bool = False
    #: Base symbol ("s"/"B") when this is a conversion constant like HOUR.
    conv_family: Optional[str] = None

    @property
    def dimensioned(self) -> bool:
        """True when this unit carries at least one base dimension."""
        return bool(self.dims)

    def describe(self) -> str:
        """The label if known, else the exponent vector (``B·s^-1``)."""
        if self.label:
            return self.label
        if not self.dims:
            return "dimensionless"
        parts = []
        for base, exp in self.dims:
            parts.append(base if exp == 1 else f"{base}^{exp}")
        return "·".join(parts)

    def same_dims(self, other: "Unit") -> bool:
        """True when both units share the same dimension vector."""
        return self.dims == other.dims

    def same_scale(self, other: "Unit") -> bool:
        """True unless both scales are known and clearly different."""
        if self.scale is None or other.scale is None:
            return True
        a, b = self.scale, other.scale
        return abs(a - b) <= 1e-9 * max(abs(a), abs(b))


#: The transparent unit of a numeric literal.
LITERAL = Unit(literal=True, label="")

#: A genuinely dimensionless quantity (counts, ratios).
DIMENSIONLESS = Unit(dims=(), scale=1.0, label="dimensionless")


def _merge_dims(a: Dims, b: Dims, sign: int) -> Dims:
    out: Dict[str, int] = dict(a)
    for base, exp in b:
        out[base] = out.get(base, 0) + sign * exp
    return tuple(sorted((k, v) for k, v in out.items() if v != 0))


def _pow_dims(a: Dims, n: int) -> Dims:
    return tuple(sorted((k, v * n) for k, v in a if v * n != 0))


def multiply(a: Unit, b: Unit) -> Optional[Unit]:
    """``a * b`` in the algebra; ``None`` means "unknown"."""
    a2, b2 = _resolve_conversions(a, b)
    if a2.literal and b2.literal:
        return LITERAL
    if a2.literal:
        return replace(b2, scale=None, label="", literal=False, conv_family=None)
    if b2.literal:
        return replace(a2, scale=None, label="", literal=False, conv_family=None)
    scale = None
    if a2.scale is not None and b2.scale is not None:
        scale = a2.scale * b2.scale
    return Unit(dims=_merge_dims(a2.dims, b2.dims, +1), scale=scale)


def divide(a: Unit, b: Unit) -> Optional[Unit]:
    """``a / b`` in the algebra; ``None`` means "unknown"."""
    a2, b2 = _resolve_conversions(a, b)
    if a2.literal and b2.literal:
        return LITERAL
    if b2.literal:
        return replace(a2, scale=None, label="", literal=False, conv_family=None)
    if a2.literal:
        scale = None
        return Unit(dims=_merge_dims((), b2.dims, -1), scale=scale)
    scale = None
    if a2.scale is not None and b2.scale is not None and b2.scale != 0:
        scale = a2.scale / b2.scale
    return Unit(dims=_merge_dims(a2.dims, b2.dims, -1), scale=scale)


def power_of(a: Unit, n: int) -> Optional[Unit]:
    """``a ** n`` for a literal integer exponent."""
    if a.literal:
        return LITERAL
    scale = a.scale ** n if a.scale is not None else None
    return Unit(dims=_pow_dims(a.dims, n), scale=scale)


def _resolve_conversions(a: Unit, b: Unit) -> Tuple[Unit, Unit]:
    """Decide each conversion constant's role from the *other* operand.

    ``months * MONTH`` re-expresses a time value (transparent literal);
    ``watts * DAY`` multiplies by a duration (canonical quantity).
    """
    return (_resolve_one(a, b), _resolve_one(b, a))


def _resolve_one(unit: Unit, other: Unit) -> Unit:
    if unit.conv_family is None:
        return unit
    other_bases = {base for base, _ in other.dims}
    if unit.conv_family in other_bases:
        return LITERAL
    return Unit(dims=unit.dims, scale=1.0, label=unit.label)


# --------------------------------------------------------------------------
# Unit vocabulary: suffix words and ``_per_`` compounds.

def _u(dims: Dims, scale: float, label: str) -> Unit:
    return Unit(dims=dims, scale=scale, label=label)


#: 30-day months, matching the paper's convention in repro.units.
_MONTH_S = 30 * 86_400.0

_WORDS: Dict[str, Unit] = {
    # time
    "ms": _u(TIME, 1e-3, "milliseconds"),
    "s": _u(TIME, 1.0, "seconds"),
    "sec": _u(TIME, 1.0, "seconds"),
    "secs": _u(TIME, 1.0, "seconds"),
    "second": _u(TIME, 1.0, "seconds"),
    "seconds": _u(TIME, 1.0, "seconds"),
    "min": _u(TIME, 60.0, "minutes"),
    "minute": _u(TIME, 60.0, "minutes"),
    "minutes": _u(TIME, 60.0, "minutes"),
    "hour": _u(TIME, 3_600.0, "hours"),
    "hours": _u(TIME, 3_600.0, "hours"),
    "day": _u(TIME, 86_400.0, "days"),
    "days": _u(TIME, 86_400.0, "days"),
    "month": _u(TIME, _MONTH_S, "months"),
    "months": _u(TIME, _MONTH_S, "months"),
    "year": _u(TIME, 365 * 86_400.0, "years"),
    "years": _u(TIME, 365 * 86_400.0, "years"),
    # data (decimal prefixes, matching repro.units)
    "byte": _u(DATA, 1.0, "bytes"),
    "bytes": _u(DATA, 1.0, "bytes"),
    "kb": _u(DATA, 1e3, "kilobytes"),
    "mb": _u(DATA, 1e6, "megabytes"),
    "gb": _u(DATA, 1e9, "gigabytes"),
    "tb": _u(DATA, 1e12, "terabytes"),
    # power
    "w": _u(POWER, 1.0, "watts"),
    "watt": _u(POWER, 1.0, "watts"),
    "watts": _u(POWER, 1.0, "watts"),
    "kw": _u(POWER, 1e3, "kilowatts"),
    "mw": _u(POWER, 1e6, "megawatts"),
    # energy
    "j": _u(ENERGY, 1.0, "joules"),
    "joule": _u(ENERGY, 1.0, "joules"),
    "joules": _u(ENERGY, 1.0, "joules"),
    "kj": _u(ENERGY, 1e3, "kilojoules"),
    "wh": _u(ENERGY, 3_600.0, "watt-hours"),
    "kwh": _u(ENERGY, 3.6e6, "kilowatt-hours"),
    "mwh": _u(ENERGY, 3.6e9, "megawatt-hours"),
}

#: Single-letter unit words are only honoured as a real ``_x`` suffix
#: (``step_s``, ``self_j``) — a bare ``s``/``j``/``w`` is a loop index.
_NEEDS_UNDERSCORE = {"s", "j", "w"}


def _word_unit(word: str) -> Optional[Unit]:
    return _WORDS.get(word)


def unit_of_name(name: str) -> Optional[Unit]:
    """The unit implied by an identifier, or ``None``.

    ``duration_seconds`` → seconds; ``cap_w`` → watts; compound rate
    names parse through their last ``_per_``: ``bw_bytes_per_s`` →
    bytes·s^-1, ``alpha_seconds_per_gb`` → seconds·gigabyte^-1.
    """
    lowered = name.lower()
    if "_per_" in lowered:
        head, _, tail = lowered.rpartition("_per_")
        num = unit_of_name(head)
        den = _word_unit(tail)
        if num is None or den is None or num.literal or den.literal:
            return None
        out = divide(num, den)
        if out is None or not out.dims:
            return None
        return replace(out, label=f"{num.describe()}/{den.describe()}")
    if "_" in lowered:
        tokens = lowered.split("_")
        unit = _word_unit(tokens[-1])
        if unit is not None and len(tokens) >= 2:
            prev = _word_unit(tokens[-2])
            if prev is not None and not prev.literal:
                # Two adjacent unit tokens (``bandwidth_mb_s``) usually mean
                # "mb per s"; without an explicit ``_per_`` we don't guess.
                return None
        return unit
    if lowered in _NEEDS_UNDERSCORE:
        return None
    return _word_unit(lowered)


def conversion_constant(family: str, label: str) -> Unit:
    """A conversion-factor unit (HOUR, GB, ...) for ``family`` ("s"/"B")."""
    dims = TIME if family == "s" else DATA
    return Unit(dims=dims, scale=1.0, label=label, conv_family=family)


# --------------------------------------------------------------------------
# ``# repro-unit:`` annotations.

_ANNOTATION_RE = re.compile(r"#\s*repro-unit:\s*([A-Za-z0-9_=,\s\-]+)")


def parse_unit_spec(spec: str) -> Optional[Unit]:
    """Parse one annotation unit string (``joules``, ``seconds_per_gb``)."""
    spec = spec.strip().lower()
    if not spec:
        return None
    if spec in ("dimensionless", "count", "ratio", "none"):
        return DIMENSIONLESS
    if "_per_" in spec:
        return unit_of_name(spec)
    return _word_unit(spec)


def scan_unit_annotations(
    lines: Sequence[str],
) -> Dict[int, Dict[str, Unit]]:
    """Per-line ``# repro-unit:`` annotations.

    Returns ``{lineno: {name: unit}}``; the empty-string key holds a bare
    unit spec (``# repro-unit: joules``) that applies to the assignment
    target (or the function's return value) on that line.
    """
    out: Dict[int, Dict[str, Unit]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _ANNOTATION_RE.search(text)
        if match is None:
            continue
        entry: Dict[str, Unit] = {}
        for token in match.group(1).split(","):
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                name, _, spec = token.partition("=")
                unit = parse_unit_spec(spec)
                if unit is not None:
                    entry[name.strip()] = unit
            else:
                unit = parse_unit_spec(token)
                if unit is not None:
                    entry[""] = unit
        if entry:
            out[lineno] = entry
    return out


def annotations_for_span(
    annotations: Dict[int, Dict[str, Unit]], start: int, end: int
) -> Dict[str, Unit]:
    """Merge the annotations found on lines ``start``..``end`` inclusive."""
    merged: Dict[str, Unit] = {}
    for lineno in range(start, end + 1):
        merged.update(annotations.get(lineno, {}))
    return merged
