"""Whole-package function summaries for inter-procedural dimension checks.

The flow analyzer never executes code, so the only way a call boundary
can carry dimension information is through *summaries*: a per-function
record of what unit each parameter expects and what unit the return
value carries.  Summaries come from three sources, in increasing order
of precedence:

1. the parameter / function *name* (``duration_s``, ``total_joules``,
   ``gb_to_bytes``) via :func:`repro.lint.flow.dims.unit_of_name` —
   function names only count when they contain an underscore, so a
   converter named plainly ``hours`` (which *returns seconds*) is not
   misread as returning hours;
2. module-level conversion constants (``HOUR = 3_600.0``) — ALL-CAPS
   single-dimension names become :func:`conversion constants
   <repro.lint.flow.dims.conversion_constant>`;
3. an explicit ``# repro-unit:`` comment on the ``def`` line (or the
   line of a module constant), which always wins:
   ``def hours(h):  # repro-unit: seconds, h=hours``.

:func:`index_for` locates the package root of a file (walking up while
``__init__.py`` is present), parses every module under it exactly once
(mtime-cached across runs in the same process) and returns a
:class:`PackageIndex` that resolves dotted module names, top-level
functions, classes and methods.  Modules outside the root that belong
to the ``repro`` package itself are resolved lazily through
``importlib.util.find_spec`` so that ``tests/`` code calling into
``src/repro`` still gets summaries.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.flow.dims import (
    Unit,
    annotations_for_span,
    conversion_constant,
    scan_unit_annotations,
    unit_of_name,
)

__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "PackageIndex",
    "index_for",
    "summarize_module",
]


@dataclass(frozen=True)
class FunctionSummary:
    """Units at one function boundary: per-parameter and return."""

    name: str
    qualname: str
    #: Positional parameter names, ``self``/``cls`` excluded.
    params: Tuple[str, ...] = ()
    #: Parameter name → expected unit (only parameters with a known unit).
    param_units: Dict[str, Unit] = field(default_factory=dict)
    #: Unit of the return value, or None when unknown.
    return_unit: Optional[Unit] = None

    def param_unit_at(self, index: int) -> Optional[Tuple[str, Unit]]:
        """``(name, unit)`` of the positional parameter ``index``."""
        if 0 <= index < len(self.params):
            name = self.params[index]
            unit = self.param_units.get(name)
            if unit is not None:
                return (name, unit)
        return None


@dataclass
class ModuleSummary:
    """Everything the analyzer knows about one parsed module."""

    name: str
    path: str
    #: Top-level function name → summary.
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: Class name → method name → summary (``__init__`` included).
    classes: Dict[str, Dict[str, FunctionSummary]] = field(default_factory=dict)
    #: Module-level constant name → unit.
    constants: Dict[str, Unit] = field(default_factory=dict)

    def method(self, cls: str, name: str) -> Optional[FunctionSummary]:
        """The summary of ``cls.name`` or None."""
        return self.classes.get(cls, {}).get(name)


def _positional_params(args: ast.arguments) -> List[ast.arg]:
    params = list(args.posonlyargs) + list(args.args)
    if params and params[0].arg in ("self", "cls"):
        params = params[1:]
    return params


def summarize_function(
    node: ast.AST,
    annotations: Dict[int, Dict[str, Unit]],
    qualprefix: str = "",
) -> FunctionSummary:
    """Build the :class:`FunctionSummary` of one ``def``."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    body_start = node.body[0].lineno if node.body else node.lineno
    sig_span = annotations_for_span(annotations, node.lineno, max(node.lineno, body_start - 1))

    params = _positional_params(node.args)
    kwonly = list(node.args.kwonlyargs)
    param_units: Dict[str, Unit] = {}
    for arg in params + kwonly:
        unit = sig_span.get(arg.arg)
        if unit is None:
            unit = unit_of_name(arg.arg)
        if unit is not None and unit.dimensioned:
            param_units[arg.arg] = unit

    return_unit = sig_span.get("")
    if return_unit is None and "_" in node.name:
        return_unit = unit_of_name(node.name)
    if return_unit is not None and not return_unit.dimensioned:
        return_unit = None

    return FunctionSummary(
        name=node.name,
        qualname=f"{qualprefix}{node.name}",
        params=tuple(arg.arg for arg in params),
        param_units=param_units,
        return_unit=return_unit,
    )


def _constant_unit(name: str, node: ast.AST, annotated: Optional[Unit]) -> Optional[Unit]:
    if annotated is not None:
        return annotated if annotated.dimensioned else None
    unit = unit_of_name(name)
    if unit is None or not unit.dimensioned:
        return None
    # ALL-CAPS single-base constants (HOUR, GB, ...) are conversion
    # factors: context decides whether they convert or quantify.
    if name.isupper() and "_" not in name and len(unit.dims) == 1 and unit.dims[0][1] == 1:
        return conversion_constant(unit.dims[0][0], unit.label or name.lower())
    return unit


def summarize_module(path: Path, name: str, tree: Optional[ast.Module] = None) -> ModuleSummary:
    """Parse (if needed) and summarize one module file."""
    if tree is None:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except (OSError, UnicodeDecodeError, SyntaxError):
            return ModuleSummary(name=name, path=str(path))
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError):
        lines = []
    annotations = scan_unit_annotations(lines)

    summary = ModuleSummary(name=name, path=str(path))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions[node.name] = summarize_function(node, annotations)
        elif isinstance(node, ast.ClassDef):
            methods: Dict[str, FunctionSummary] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = summarize_function(
                        item, annotations, qualprefix=f"{node.name}."
                    )
            summary.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            annotated = annotations.get(node.lineno, {}).get("")
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                unit = _constant_unit(target.id, node, annotated)
                if unit is not None:
                    summary.constants[target.id] = unit
    return summary


class PackageIndex:
    """Summaries for every module under one package root.

    ``root`` is the directory of the *top-level* package (the highest
    ancestor directory still holding ``__init__.py``).  Dotted module
    names are relative to ``root.parent``.
    """

    def __init__(self, root: Path) -> None:
        self.root = root.resolve()
        self.package = self.root.name
        self._modules: Dict[str, ModuleSummary] = {}
        self._mtimes: Dict[str, float] = {}
        self._missing: set = set()
        self.refresh()

    def _module_name(self, path: Path) -> str:
        rel = path.resolve().relative_to(self.root.parent)
        parts = list(rel.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def refresh(self) -> None:
        """(Re)parse modules whose mtime changed; drop deleted ones."""
        seen = set()
        for path in sorted(self.root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            name = self._module_name(path)
            seen.add(name)
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            if self._mtimes.get(name) == mtime:
                continue
            self._modules[name] = summarize_module(path, name)
            self._mtimes[name] = mtime
        for name in list(self._modules):
            if name not in seen and not self._modules[name].path.startswith("<"):
                if Path(self._modules[name].path).exists():
                    continue
                del self._modules[name]
                self._mtimes.pop(name, None)

    def module(self, dotted: str) -> Optional[ModuleSummary]:
        """Resolve a dotted module name, falling back to ``find_spec``.

        The fallback only fires for the local ``repro`` package (or the
        index's own top-level package), never for third-party imports —
        parsing numpy would be pointless and slow.
        """
        if dotted in self._modules:
            return self._modules[dotted]
        top = dotted.split(".", 1)[0]
        if top not in ("repro", self.package) or dotted in self._missing:
            return None
        try:
            spec = importlib.util.find_spec(dotted)
        except (ImportError, ValueError, AttributeError):
            spec = None
        origin = getattr(spec, "origin", None)
        if origin is None or not origin.endswith(".py"):
            self._missing.add(dotted)
            return None
        summary = summarize_module(Path(origin), dotted)
        self._modules[dotted] = summary
        return summary

    def function(self, dotted_module: str, name: str) -> Optional[FunctionSummary]:
        """The summary of ``dotted_module.name`` (function) or None."""
        mod = self.module(dotted_module)
        if mod is None:
            return None
        return mod.functions.get(name)

    def constant(self, dotted_module: str, name: str) -> Optional[Unit]:
        """The unit of module constant ``dotted_module.name`` or None."""
        mod = self.module(dotted_module)
        if mod is None:
            return None
        return mod.constants.get(name)

    def class_methods(self, dotted_module: str, cls: str) -> Optional[Dict[str, FunctionSummary]]:
        """Method summaries of ``dotted_module.cls`` or None."""
        mod = self.module(dotted_module)
        if mod is None:
            return None
        return mod.classes.get(cls)

    def find_class(self, cls: str) -> Optional[Dict[str, FunctionSummary]]:
        """Methods of the unique class named ``cls`` across the index.

        Returns None when the name is absent *or ambiguous* — a wrong
        guess would produce false findings, so ambiguity means silence.
        """
        hits = [m.classes[cls] for m in self._modules.values() if cls in m.classes]
        if len(hits) == 1:
            return hits[0]
        return None


_INDEX_CACHE: Dict[str, PackageIndex] = {}


def package_root(path: Path) -> Optional[Path]:
    """The top-most ancestor package directory of ``path``, or None."""
    current = path.resolve().parent
    root = None
    while (current / "__init__.py").exists():
        root = current
        if current.parent == current:
            break
        current = current.parent
    return root


def index_for(path: Path) -> Tuple[Optional[PackageIndex], Optional[str]]:
    """``(index, dotted-module-name)`` for the file at ``path``.

    Files outside any package get ``(None, None)`` — the dataflow then
    runs with local-only summaries, which is what makes single-file test
    fixtures work.
    """
    root = package_root(path)
    if root is None:
        return (None, None)
    key = str(root)
    index = _INDEX_CACHE.get(key)
    if index is None:
        index = PackageIndex(root)
        _INDEX_CACHE[key] = index
    else:
        index.refresh()
    try:
        name = index._module_name(path)
    except ValueError:
        name = None
    return (index, name)
