"""Per-function dimension dataflow — the ``dim-*`` findings.

For every function in a file the analyzer runs a forward pass over the
statement list, tracking each local variable's inferred :class:`Unit`
(and, separately, its class type where it can be proven from a
constructor call or annotation).  Units enter the environment from
parameter names/annotations, flow through assignments and arithmetic
via the algebra in :mod:`repro.lint.flow.dims`, and cross call
boundaries through the :class:`~repro.lint.flow.summaries.PackageIndex`
summaries — resolved via ``from``-imports, module aliases, ``self`` and
locally constructed instances.

Three findings come out of the pass:

* ``dim-mix`` — ``+``/``-``/``+=``/comparison/assignment whose two sides
  carry *different dimensions* (seconds vs bytes), or the same dimension
  at two *certain but different scales* (hours vs seconds).
* ``dim-arg`` — a call argument whose inferred unit clashes with the
  callee parameter's declared unit.
* ``dim-return`` — a function whose name (or annotation) promises one
  unit while a ``return`` expression carries another.

The pass is deliberately conservative: a finding requires *both* sides
to be known and dimensioned, numeric literals are transparent, and any
merge conflict (a variable assigned different units on two branches)
degrades to "unknown" rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.engine import FileContext, Finding
from repro.lint.flow.dims import (
    LITERAL,
    Unit,
    annotations_for_span,
    multiply,
    divide,
    power_of,
    scan_unit_annotations,
    unit_of_name,
)
from repro.lint.flow.summaries import (
    FunctionSummary,
    ModuleSummary,
    PackageIndex,
    index_for,
    summarize_function,
    summarize_module,
)

__all__ = ["FlowAnalysis", "flow_findings"]

#: Builtins that return their argument's unit unchanged.
_PASSTHROUGH = {"abs", "float", "int", "round", "min", "max", "sum", "sorted"}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Imports:
    """The file's import table: aliases to modules and names."""

    def __init__(self, tree: ast.Module, module_name: Optional[str]) -> None:
        #: local alias → dotted module name
        self.modules: Dict[str, str] = {}
        #: local name → (dotted module, remote name)
        self.names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.modules[local] = target
                    if alias.asname is None and "." in alias.name:
                        # ``import repro.units`` binds ``repro`` but makes
                        # the full dotted path resolvable too.
                        self.modules.setdefault(alias.name, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level and module_name:
                    parts = module_name.split(".")
                    # level=1 strips the module's own name, deeper levels
                    # strip enclosing packages.
                    anchor = parts[: len(parts) - node.level]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                elif node.level:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.names[alias.asname or alias.name] = (base, alias.name)

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Map a source-level dotted prefix to a real module name."""
        if dotted in self.modules:
            return self.modules[dotted]
        head, _, tail = dotted.partition(".")
        if head in self.names:
            mod, name = self.names[head]
            sub = f"{mod}.{name}"
            return f"{sub}.{tail}" if tail else sub
        if head in self.modules:
            return f"{self.modules[head]}.{tail}" if tail else self.modules[head]
        return None


class FlowAnalysis:
    """One file's flow pass; collects ``dim-*`` findings."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self.annotations = scan_unit_annotations(ctx.lines)
        self.index, self.module_name = index_for(ctx.path)
        self.imports = _Imports(ctx.tree, self.module_name)
        # The file's own summary: local functions/classes resolve even
        # when the file sits outside any package (test fixtures).
        self.local = summarize_module(ctx.path, self.module_name or "<local>", tree=ctx.tree)

    # -- summary resolution ------------------------------------------------

    def _module_summary(self, dotted: str) -> Optional[ModuleSummary]:
        if dotted == self.module_name:
            return self.local
        if self.index is not None:
            return self.index.module(dotted)
        return None

    def _callee_summary(
        self, func: ast.AST, env: Dict[str, Unit], types: Dict[str, str], cls: Optional[str]
    ) -> Optional[FunctionSummary]:
        """Resolve a call expression to a function summary, if provable."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.imports.names:
                mod, remote = self.imports.names[name]
                summary = None
                module = self._module_summary(mod)
                if module is not None:
                    summary = module.functions.get(remote)
                    if summary is None and remote in module.classes:
                        return module.classes[remote].get("__init__")
                return summary
            if name in self.local.functions:
                return self.local.functions[name]
            if name in self.local.classes:
                return self.local.classes[name].get("__init__")
            return None
        if isinstance(func, ast.Attribute):
            # self.method(...)
            if isinstance(func.value, ast.Name) and func.value.id == "self" and cls:
                method = self.local.method(cls, func.attr)
                if method is not None:
                    return method
            # instance.method(...) where the instance's class is known
            if isinstance(func.value, ast.Name) and func.value.id in types:
                methods = self._class_methods(types[func.value.id])
                if methods is not None:
                    return methods.get(func.attr)
            # module.func(...) / package.module.func(...)
            dotted = _dotted_name(func.value)
            if dotted is not None:
                resolved = self.imports.resolve_module(dotted)
                if resolved is not None:
                    module = self._module_summary(resolved)
                    if module is not None:
                        summary = module.functions.get(func.attr)
                        if summary is None and func.attr in module.classes:
                            return module.classes[func.attr].get("__init__")
                        return summary
        return None

    def _class_methods(self, cls: str) -> Optional[Dict[str, FunctionSummary]]:
        if cls in self.local.classes:
            return self.local.classes[cls]
        if "." in cls:
            mod, _, base = cls.rpartition(".")
            module = self._module_summary(mod)
            if module is not None:
                return module.classes.get(base)
        if self.index is not None:
            return self.index.find_class(cls)
        return None

    def _constructed_class(self, value: ast.AST) -> Optional[str]:
        """The class name a ``Name(...)`` call constructs, if resolvable."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local.classes:
                return name
            if name in self.imports.names:
                mod, remote = self.imports.names[name]
                module = self._module_summary(mod)
                if module is not None and remote in module.classes:
                    return f"{mod}.{remote}"
            return None
        dotted = _dotted_name(func)
        if dotted is not None and "." in dotted:
            prefix, _, base = dotted.rpartition(".")
            resolved = self.imports.resolve_module(prefix)
            if resolved is not None:
                module = self._module_summary(resolved)
                if module is not None and base in module.classes:
                    return f"{resolved}.{base}"
        return None

    # -- findings ----------------------------------------------------------

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(self.ctx.finding(rule, node, message))

    def _check_combine(
        self, node: ast.AST, verb: str,
        left: Optional[Unit], right: Optional[Unit],
        left_desc: str, right_desc: str,
    ) -> None:
        """Emit dim-mix when two combined operands clash."""
        if left is None or right is None:
            return
        if left.literal or right.literal:
            return
        if not (left.dimensioned and right.dimensioned):
            return
        if not left.same_dims(right):
            self._report(
                "dim-mix", node,
                f"{verb} mixes {left_desc} [{left.describe()}] with "
                f"{right_desc} [{right.describe()}]; convert through "
                "repro.units first",
            )
        elif not left.same_scale(right):
            self._report(
                "dim-mix", node,
                f"{verb} mixes two {_base_of(left)} quantities at different "
                f"scales ({left_desc} in {left.describe()}, {right_desc} in "
                f"{right.describe()}); convert to the canonical unit first",
            )

    # -- expression evaluation ---------------------------------------------

    def eval(
        self, node: ast.AST, env: Dict[str, Unit],
        types: Dict[str, str], cls: Optional[str],
    ) -> Optional[Unit]:
        """Infer the unit of an expression; None means unknown."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
                return None
            return LITERAL
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            unit = self._named_constant(node.id)
            if unit is not None:
                return unit
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            key = _dotted_name(node)
            if key is not None and key in env:
                return env[key]
            if key is not None and "." in key:
                prefix, _, base = key.rpartition(".")
                resolved = self.imports.resolve_module(prefix)
                if resolved is not None:
                    module = self._module_summary(resolved)
                    if module is not None:
                        return module.constants.get(base)
            return unit_of_name(node.attr)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self.eval(node.operand, env, types, cls)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env, types, cls)
        if isinstance(node, ast.Compare):
            left = self.eval(node.left, env, types, cls)
            left_desc = _describe_node(node.left)
            for comparator in node.comparators:
                right = self.eval(comparator, env, types, cls)
                self._check_combine(
                    node, "comparison", left, right, left_desc, _describe_node(comparator)
                )
                left, left_desc = right, _describe_node(comparator)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, env, types, cls)
            return None
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env, types, cls)
            a = self.eval(node.body, env, types, cls)
            b = self.eval(node.orelse, env, types, cls)
            return a if _units_equal(a, b) else None
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            units = [self.eval(el, env, types, cls) for el in node.elts]
            if units and all(_units_equal(units[0], u) for u in units[1:]):
                return units[0]
            return None
        if isinstance(node, ast.Subscript):
            # A container named for its element unit indexes to that unit.
            return self.eval(node.value, env, types, cls)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env, types, cls)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, types, cls)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            # Comprehension elements: evaluate with iteration vars unknown.
            inner = dict(env)
            for gen in node.generators:
                for name in _target_names(gen.target):
                    inner.pop(name, None)
            return self.eval(node.elt, inner, types, cls)
        return None

    def _named_constant(self, name: str) -> Optional[Unit]:
        if name in self.local.constants:
            return self.local.constants[name]
        if name in self.imports.names:
            mod, remote = self.imports.names[name]
            module = self._module_summary(mod)
            if module is not None:
                return module.constants.get(remote)
        return None

    def _eval_binop(
        self, node: ast.BinOp, env: Dict[str, Unit],
        types: Dict[str, str], cls: Optional[str],
    ) -> Optional[Unit]:
        left = self.eval(node.left, env, types, cls)
        right = self.eval(node.right, env, types, cls)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_combine(
                node, "addition" if isinstance(node.op, ast.Add) else "subtraction",
                left, right, _describe_node(node.left), _describe_node(node.right),
            )
            if left is not None and not left.literal:
                return left
            if right is not None and not right.literal:
                return right
            return left if left is not None else right
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return multiply(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return divide(left, right)
        if isinstance(node.op, ast.Mod):
            return left
        if isinstance(node.op, ast.Pow):
            if isinstance(node.right, ast.Constant) and isinstance(node.right.value, int):
                return power_of(left, node.right.value)
        return None

    def _eval_call(
        self, node: ast.Call, env: Dict[str, Unit],
        types: Dict[str, str], cls: Optional[str],
    ) -> Optional[Unit]:
        for arg in node.args:
            if isinstance(arg, (ast.Call, ast.BinOp, ast.Compare)):
                self.eval(arg, env, types, cls)
        func = node.func
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH and func.id not in env:
            units = [
                self.eval(arg, env, types, cls)
                for arg in node.args
                if not isinstance(arg, ast.Starred)
            ]
            units = [u for u in units if u is not None]
            if units and all(_units_equal(units[0], u) for u in units[1:]):
                return units[0]
            return None
        summary = self._callee_summary(func, env, types, cls)
        if summary is None:
            return None
        self._check_call_args(node, summary, env, types, cls)
        return summary.return_unit

    def _check_call_args(
        self, node: ast.Call, summary: FunctionSummary,
        env: Dict[str, Unit], types: Dict[str, str], cls: Optional[str],
    ) -> None:
        """dim-arg: inferred argument units vs declared parameter units."""
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            expected = summary.param_unit_at(index)
            if expected is None:
                continue
            self._check_one_arg(node, summary, expected, arg, env, types, cls)
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            unit = summary.param_units.get(keyword.arg)
            if unit is None:
                continue
            self._check_one_arg(
                node, summary, (keyword.arg, unit), keyword.value, env, types, cls
            )

    def _check_one_arg(
        self, node: ast.Call, summary: FunctionSummary,
        expected: Tuple[str, Unit], arg: ast.AST,
        env: Dict[str, Unit], types: Dict[str, str], cls: Optional[str],
    ) -> None:
        param, want = expected
        got = self.eval(arg, env, types, cls)
        if got is None or got.literal or not got.dimensioned:
            return
        if not want.same_dims(got):
            self._report(
                "dim-arg", node,
                f"argument `{_describe_node(arg)}` [{got.describe()}] passed to "
                f"`{summary.qualname}` parameter `{param}` which expects "
                f"{want.describe()}",
            )
        elif not want.same_scale(got):
            self._report(
                "dim-arg", node,
                f"argument `{_describe_node(arg)}` is in {got.describe()} but "
                f"`{summary.qualname}` parameter `{param}` expects "
                f"{want.describe()}; convert through repro.units",
            )

    # -- statement walking -------------------------------------------------

    def run(self) -> List[Finding]:
        """Analyze every function in the file; returns the findings."""
        self._walk_defs(self.ctx.tree.body, cls=None)
        return self.findings

    def _walk_defs(self, body: Sequence[ast.stmt], cls: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._analyze_function(node, cls)
                self._walk_defs(node.body, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._walk_defs(node.body, cls=node.name)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        self._walk_defs([sub], cls)

    def _analyze_function(
        self, node: ast.FunctionDef, cls: Optional[str]
    ) -> None:
        summary = summarize_function(
            node, self.annotations, qualprefix=f"{cls}." if cls else ""
        )
        env: Dict[str, Unit] = dict(summary.param_units)
        types: Dict[str, str] = {}
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            annotation = arg.annotation
            if annotation is not None:
                dotted = _dotted_name(annotation)
                if dotted is not None:
                    types[arg.arg] = dotted
        self._exec_block(node.body, env, types, cls, summary)

    def _exec_block(
        self, body: Sequence[ast.stmt], env: Dict[str, Unit],
        types: Dict[str, str], cls: Optional[str], summary: FunctionSummary,
    ) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env, types, cls, summary)

    def _exec_stmt(
        self, stmt: ast.stmt, env: Dict[str, Unit],
        types: Dict[str, str], cls: Optional[str], summary: FunctionSummary,
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt.targets, stmt.value, stmt, env, types, cls)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._exec_assign([stmt.target], stmt.value, stmt, env, types, cls)
            dotted = _dotted_name(stmt.annotation) if stmt.annotation else None
            if dotted is not None and isinstance(stmt.target, ast.Name):
                types[stmt.target.id] = dotted
        elif isinstance(stmt, ast.AugAssign):
            target_unit = self._target_unit(stmt.target, env)
            value_unit = self.eval(stmt.value, env, types, cls)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_combine(
                    stmt, "augmented assignment", target_unit, value_unit,
                    _describe_node(stmt.target), _describe_node(stmt.value),
                )
            elif isinstance(stmt.op, ast.Mult) and target_unit and value_unit:
                self._bind(stmt.target, multiply(target_unit, value_unit), env)
            elif isinstance(stmt.op, ast.Div) and target_unit and value_unit:
                self._bind(stmt.target, divide(target_unit, value_unit), env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                got = self.eval(stmt.value, env, types, cls)
                self._check_return(stmt, got, summary)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env, types, cls)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env, types, cls)
            self._exec_branches(
                [stmt.body, stmt.orelse], env, types, cls, summary
            )
        elif isinstance(stmt, (ast.While,)):
            self.eval(stmt.test, env, types, cls)
            self._exec_branches([stmt.body, stmt.orelse], env, types, cls, summary)
        elif isinstance(stmt, ast.For):
            iter_unit = self.eval(stmt.iter, env, types, cls)
            for name in _target_names(stmt.target):
                if iter_unit is not None and not iter_unit.literal:
                    env[name] = iter_unit
                else:
                    env.pop(name, None)
            self._exec_branches([stmt.body, stmt.orelse], env, types, cls, summary)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr, env, types, cls)
            self._exec_block(stmt.body, env, types, cls, summary)
        elif isinstance(stmt, ast.Try):
            blocks = [stmt.body, stmt.orelse, stmt.finalbody]
            blocks += [h.body for h in stmt.handlers]
            self._exec_branches(blocks, env, types, cls, summary)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # handled by _walk_defs
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test, env, types, cls)
        elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
            self.eval(stmt.exc, env, types, cls)

    def _exec_branches(
        self, blocks: Sequence[Sequence[ast.stmt]], env: Dict[str, Unit],
        types: Dict[str, str], cls: Optional[str], summary: FunctionSummary,
    ) -> None:
        """Run each block on a copy of env, then merge conservatively."""
        snapshots: List[Dict[str, Unit]] = []
        for block in blocks:
            if not block:
                continue
            branch_env = dict(env)
            self._exec_block(block, branch_env, types, cls, summary)
            snapshots.append(branch_env)
        if not snapshots:
            return
        keys = set()
        for snap in snapshots:
            keys |= set(snap)
        for key in keys:
            units = [snap.get(key, env.get(key)) for snap in snapshots]
            first = units[0]
            if all(_units_equal(first, u) for u in units[1:]) and first is not None:
                env[key] = first
            else:
                env.pop(key, None)

    def _exec_assign(
        self, targets: Sequence[ast.AST], value: ast.AST, stmt: ast.stmt,
        env: Dict[str, Unit], types: Dict[str, str], cls: Optional[str],
    ) -> None:
        unit = self.eval(value, env, types, cls)
        annotated = self.annotations.get(stmt.lineno, {}).get("")
        if annotated is not None:
            unit = annotated
        constructed = self._constructed_class(value)
        for target in targets:
            if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
                for sub, subvalue in zip(target.elts, value.elts):
                    self._exec_assign([sub], subvalue, stmt, env, types, cls)
                continue
            if isinstance(target, ast.Tuple):
                for name in _target_names(target):
                    env.pop(name, None)
                continue
            if annotated is None:
                self._check_assign_target(target, unit, stmt, env)
            self._bind(target, unit, env)
            if constructed is not None and isinstance(target, ast.Name):
                types[target.id] = constructed
            elif isinstance(target, ast.Name):
                types.pop(target.id, None)

    def _check_assign_target(
        self, target: ast.AST, unit: Optional[Unit], stmt: ast.stmt,
        env: Dict[str, Unit],
    ) -> None:
        if unit is None or unit.literal or not unit.dimensioned:
            return
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            return
        declared = unit_of_name(name)
        if declared is None or not declared.dimensioned:
            return
        self._check_combine(
            stmt, "assignment", declared, unit,
            f"`{name}`", _describe_node(stmt.value if hasattr(stmt, "value") else target),
        )

    def _check_return(
        self, stmt: ast.Return, got: Optional[Unit], summary: FunctionSummary
    ) -> None:
        want = summary.return_unit
        if want is None or got is None:
            return
        if got.literal or not got.dimensioned or not want.dimensioned:
            return
        if not want.same_dims(got):
            self._report(
                "dim-return", stmt,
                f"`{summary.qualname}` promises {want.describe()} but this "
                f"return is [{got.describe()}]",
            )
        elif not want.same_scale(got):
            self._report(
                "dim-return", stmt,
                f"`{summary.qualname}` promises {want.describe()} but this "
                f"return is in {got.describe()}; convert before returning",
            )

    def _target_unit(self, target: ast.AST, env: Dict[str, Unit]) -> Optional[Unit]:
        if isinstance(target, ast.Name):
            if target.id in env:
                return env[target.id]
            return unit_of_name(target.id)
        if isinstance(target, ast.Attribute):
            key = _dotted_name(target)
            if key is not None and key in env:
                return env[key]
            return unit_of_name(target.attr)
        return None

    def _bind(self, target: ast.AST, unit: Optional[Unit], env: Dict[str, Unit]) -> None:
        if isinstance(target, ast.Name):
            if unit is None or unit.literal:
                env.pop(target.id, None)
            else:
                env[target.id] = unit
        elif isinstance(target, ast.Attribute):
            key = _dotted_name(target)
            if key is None:
                return
            if unit is None or unit.literal:
                env.pop(key, None)
            else:
                env[key] = unit


def _units_equal(a: Optional[Unit], b: Optional[Unit]) -> bool:
    if a is None or b is None:
        return a is b
    return a.dims == b.dims and a.scale == b.scale and a.literal == b.literal


def _base_of(unit: Unit) -> str:
    names = {"s": "time", "B": "data", "J": "energy"}
    if len(unit.dims) == 1:
        return names.get(unit.dims[0][0], "mixed")
    if unit.dims == (("J", 1), ("s", -1)):
        return "power"
    return "mixed"


def _target_names(target: ast.AST) -> List[str]:
    out: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            out.append(node.id)
    return out


def _describe_node(node: ast.AST) -> str:
    name = _dotted_name(node)
    if name is not None:
        return name
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"
    return text if len(text) <= 40 else text[:37] + "..."


def flow_findings(ctx: FileContext) -> List[Finding]:
    """All ``dim-*``/``det-*`` findings for one file, computed once.

    The result is cached on the :class:`FileContext` so each of the
    seven flow rules can filter it without re-running the pass.
    """
    cached = getattr(ctx, "_flow_findings", None)
    if cached is not None:
        return cached
    from repro.lint.flow.determinism import determinism_findings

    findings = FlowAnalysis(ctx).run()
    findings.extend(determinism_findings(ctx))
    ctx._flow_findings = findings
    return findings
