"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean, 1 = findings, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.lint.engine import LintRunner, registered_rules
from repro.lint.reporters import render_json, render_text

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis: units discipline, "
        "paper provenance, solver hygiene, API hygiene.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="IDS", default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--disable", metavar="IDS", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split(ids: Optional[str]) -> Optional[Sequence[str]]:
    if ids is None:
        return None
    return [part.strip() for part in ids.split(",") if part.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, rule in sorted(registered_rules().items()):
            print(f"{rule_id:16s} {rule.summary}")
        return 0
    try:
        runner = LintRunner(select=_split(args.select), disable=_split(args.disable))
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    findings = runner.run(args.paths)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0
