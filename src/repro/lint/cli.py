"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean (or all findings baselined), 1 = findings,
2 = bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_FILE,
    check_baseline,
    write_baseline,
)
from repro.lint.engine import LintRunner, registered_rules
from repro.lint.reporters import render_json, render_sarif, render_text

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis: units discipline, "
        "flow-sensitive dimensional/determinism checks, paper provenance, "
        "solver hygiene, API hygiene.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="IDS", default=None,
        help="comma-separated rule ids to run exclusively",
    )
    parser.add_argument(
        "--disable", metavar="IDS", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline", choices=("write", "check"), default=None,
        help="write: snapshot current findings as known debt; "
        "check: fail only on findings not in the snapshot",
    )
    parser.add_argument(
        "--baseline-file", metavar="PATH", default=DEFAULT_BASELINE_FILE,
        help=f"baseline location (default: {DEFAULT_BASELINE_FILE})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split(ids: Optional[str]) -> Optional[Sequence[str]]:
    if ids is None:
        return None
    return [part.strip() for part in ids.split(",") if part.strip()]


def _render(findings, fmt: str) -> str:
    if fmt == "json":
        return render_json(findings)
    if fmt == "sarif":
        return render_sarif(findings)
    return render_text(findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, rule in sorted(registered_rules().items()):
            print(f"{rule_id:20s} {rule.summary}")
        return 0
    try:
        runner = LintRunner(select=_split(args.select), disable=_split(args.disable))
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    findings = runner.run(args.paths)

    if args.baseline == "write":
        count = write_baseline(findings, Path(args.baseline_file))
        print(
            f"repro-lint: baselined {len(findings)} finding(s) "
            f"({count} distinct) into {args.baseline_file}",
            file=sys.stderr,
        )
        return 0
    if args.baseline == "check":
        baseline_path = Path(args.baseline_file)
        if not baseline_path.exists():
            print(
                f"repro-lint: baseline file {args.baseline_file} not found; "
                "run --baseline write first",
                file=sys.stderr,
            )
            return 2
        result = check_baseline(findings, baseline_path)
        print(_render(result.new, args.format))
        if result.suppressed:
            print(
                f"repro-lint: {result.suppressed} finding(s) matched the "
                "baseline and were suppressed",
                file=sys.stderr,
            )
        for path, rule, message in result.stale:
            print(
                f"repro-lint: stale baseline entry {path}: {rule}: {message}",
                file=sys.stderr,
            )
        return 1 if result.new else 0

    print(_render(findings, args.format))
    return 1 if findings else 0
