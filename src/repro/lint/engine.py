"""Analyzer core: file contexts, the rule registry and the runner.

The engine is deliberately small.  A :class:`Rule` sees one parsed file at
a time through a :class:`FileContext` (source text, split lines, AST) and
yields :class:`Finding` objects.  The runner parses each file once, runs
every registered rule over it, and filters the results through the
suppression comments found in the source:

* ``x = a_gb + b_bytes  # repro-lint: disable=unit-mix`` — suppresses the
  named rule(s) on that line only;
* a standalone ``# repro-lint: disable=unit-mix`` comment line —
  suppresses the named rule(s) for the entire file;
* ``disable=all`` — suppresses every rule.

Rules register themselves with the :func:`register` decorator; importing
:mod:`repro.lint.rules` pulls in the built-in rule pack.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Type

__all__ = [
    "FileContext",
    "Finding",
    "LintRunner",
    "Rule",
    "iter_python_files",
    "register",
    "registered_rules",
    "run_lint",
]

#: Matches one suppression comment; group 1 is the comma-separated id list.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Sentinel rule id meaning "suppress everything".
ALL_RULES = "all"

#: Rule id used for files that fail to parse.
PARSE_ERROR = "parse-error"

#: Rule id for suppression comments that matched no finding.
UNUSED_SUPPRESSION = "unused-suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class FileContext:
    """Everything a rule may inspect about one file."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.posix = path.resolve().as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.file_suppressions: set = set()
        self.line_suppressions: Dict[int, set] = {}
        #: Every suppression comment: (lineno, ids, is_file_level).
        self.suppression_comments: List[tuple] = []
        #: Rule ids that actually suppressed a finding, per scope.
        self.used_file_suppressions: set = set()
        self.used_line_suppressions: Dict[int, set] = {}
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        for lineno, text in self._comment_lines():
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            file_level = text.lstrip().startswith("#")
            self.suppression_comments.append((lineno, frozenset(ids), file_level))
            if file_level:
                self.file_suppressions |= ids
            else:
                self.line_suppressions.setdefault(lineno, set()).update(ids)

    def _comment_lines(self) -> Iterator[tuple]:
        """``(lineno, line-text)`` for lines holding a *real* comment.

        Tokenizing (rather than regex over raw lines) keeps suppression
        directives embedded in string literals — lint-test fixtures,
        docs — from being honoured or judged as stale.
        """
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # Fall back to the raw-line scan; the file parsed as AST, so
            # this is about tokenizer quirks, not broken source.
            for lineno, text in enumerate(self.lines, start=1):
                yield (lineno, text)
            return
        for token in tokens:
            if token.type == tokenize.COMMENT:
                lineno = token.start[0]
                if 1 <= lineno <= len(self.lines):
                    yield (lineno, self.lines[lineno - 1])

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is disabled file-wide or on ``line``.

        A match is recorded so :class:`LintRunner` can report suppression
        comments that never matched anything (``unused-suppression``).
        """
        hit = False
        if rule_id in self.file_suppressions or ALL_RULES in self.file_suppressions:
            self.used_file_suppressions.add(rule_id)
            hit = True
        at_line = self.line_suppressions.get(line, ())
        if rule_id in at_line or ALL_RULES in at_line:
            self.used_line_suppressions.setdefault(line, set()).add(rule_id)
            hit = True
        return hit

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` and ``summary`` and implement :meth:`check`.
    ``id`` is what suppression comments and ``--select``/``--disable``
    refer to.
    """

    #: Stable identifier, e.g. ``"unit-mix"``.
    id: str = ""
    #: One-line description shown by ``--list-rules`` and the README.
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def applies_to(self, ctx: FileContext) -> bool:
        """Path-based scoping hook; default: every file."""
        return True


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in (ALL_RULES, PARSE_ERROR):
        raise ValueError(f"reserved rule id: {rule.id}")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def registered_rules() -> Dict[str, Rule]:
    """The registry (id → rule), loading the built-in pack on first use."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, skipping caches."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..")
                   for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


class LintRunner:
    """Runs a rule set over a collection of files."""

    def __init__(
        self,
        rules: Optional[Iterable[Rule]] = None,
        select: Optional[Sequence[str]] = None,
        disable: Optional[Sequence[str]] = None,
    ) -> None:
        pool = list(rules) if rules is not None else list(registered_rules().values())
        if select:
            wanted = set(select)
            unknown = wanted - {r.id for r in pool}
            if unknown:
                raise ValueError(f"unknown rule ids: {sorted(unknown)}")
            pool = [r for r in pool if r.id in wanted]
        if disable:
            dropped = set(disable)
            pool = [r for r in pool if r.id not in dropped]
        self.rules = pool
        #: The unused-suppression check is engine-driven (it needs the
        #: post-run hit record), but obeys select/disable like any rule.
        self._judge_unused = any(r.id == UNUSED_SUPPRESSION for r in pool)

    def check_file(self, path: Path) -> List[Finding]:
        """Lint one file; a syntax error yields a single parse-error finding."""
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Finding(str(path), 1, 1, PARSE_ERROR, f"unreadable file: {exc}")]
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    str(path), exc.lineno or 1, (exc.offset or 0) + 1,
                    PARSE_ERROR, f"syntax error: {exc.msg}",
                )
            ]
        ctx = FileContext(path, source, tree)
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if not ctx.suppressed(finding.rule, finding.line):
                    findings.append(finding)
        if self._judge_unused:
            for finding in self._unused_suppressions(ctx):
                if not ctx.suppressed(finding.rule, finding.line):
                    findings.append(finding)
        return findings

    def _unused_suppressions(self, ctx: FileContext) -> List[Finding]:
        """``unused-suppression`` findings for comments that matched nothing.

        Only rule ids the current run actually executed are judged — a
        ``--select`` that excludes a rule cannot prove its suppressions
        stale.  ``disable=all`` counts as used when *any* finding was
        suppressed in its scope.
        """
        active = {rule.id for rule in self.rules} | {PARSE_ERROR}
        out: List[Finding] = []
        for lineno, ids, file_level in ctx.suppression_comments:
            if file_level:
                used = ctx.used_file_suppressions
            else:
                used = ctx.used_line_suppressions.get(lineno, set())
            for rule_id in sorted(ids):
                if rule_id == ALL_RULES:
                    if used:
                        continue
                elif rule_id not in active:
                    continue
                elif rule_id in used:
                    continue
                scope = "file-level" if file_level else "line"
                out.append(
                    Finding(
                        path=str(ctx.path), line=lineno, col=1,
                        rule=UNUSED_SUPPRESSION,
                        message=f"{scope} suppression of `{rule_id}` matched "
                        "no finding; remove the stale comment",
                    )
                )
        return out

    def run(self, paths: Sequence[str]) -> List[Finding]:
        """Lint every python file reachable from ``paths``."""
        findings: List[Finding] = []
        for path in iter_python_files(paths):
            findings.extend(self.check_file(path))
        return sorted(findings)


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """One-call API: lint ``paths`` with the registered rule pack."""
    return LintRunner(select=select, disable=disable).run(paths)
