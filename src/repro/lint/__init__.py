"""``repro.lint`` — the project's own static-analysis pass.

A small AST-based analyzer that enforces the invariants this reproduction
depends on and that generic linters cannot know about:

* **units discipline** — the strict internal convention of
  :mod:`repro.units` (seconds / bytes / watts / joules) must not be
  violated by arithmetic that mixes identifiers carrying different unit
  suffixes, and large numeric literals must not shadow the named
  constants of :mod:`repro.units` / :mod:`repro.paper`;
* **paper provenance** — every transcribed constant in
  :mod:`repro.paper` carries a ``#:`` citation comment, and no other
  module silently re-embeds a paper value;
* **simulation-loop hygiene** — ocean solver step functions stay pure:
  no printing, file I/O or wall-clock reads (instrumentation goes
  through :mod:`repro.events.tracing`);
* **API hygiene** — no mutable default arguments, no bare ``except``,
  and a present, consistent ``__all__`` in every public module.

Run it as ``python -m repro.lint src/ tests/ benchmarks/`` or through the
main CLI as ``python -m repro lint``.  Findings can be suppressed with
``# repro-lint: disable=RULE`` comments (trailing comment = that line
only, standalone comment line = the whole file).
"""

from __future__ import annotations

from repro.lint.engine import (
    FileContext,
    Finding,
    LintRunner,
    Rule,
    iter_python_files,
    registered_rules,
    run_lint,
)
from repro.lint.reporters import render_json, render_text

__all__ = [
    "FileContext",
    "Finding",
    "LintRunner",
    "Rule",
    "iter_python_files",
    "registered_rules",
    "render_json",
    "render_text",
    "run_lint",
]
