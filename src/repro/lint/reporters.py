"""Finding reporters: plain text (one finding per line) and JSON."""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.lint.engine import Finding

__all__ = ["render_json", "render_text", "summary_line"]


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: rule: message`` lines plus a count footer."""
    lines = [str(f) for f in findings]
    lines.append(summary_line(findings))
    return "\n".join(lines)


def summary_line(findings: Sequence[Finding]) -> str:
    """The one-line verdict printed after the findings."""
    if not findings:
        return "repro-lint: clean"
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    breakdown = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    plural = "s" if len(findings) != 1 else ""
    return f"repro-lint: {len(findings)} finding{plural} ({breakdown})"


def render_json(findings: Iterable[Finding]) -> str:
    """A JSON document: ``{"findings": [...], "count": N}``."""
    rows: List[dict] = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule,
            "message": f.message,
        }
        for f in findings
    ]
    return json.dumps({"findings": rows, "count": len(rows)}, indent=2)
