"""Finding reporters: plain text, JSON and SARIF 2.1.0.

Every reporter sorts its input by ``(path, line, col, rule, message)``
before rendering, so two runs over the same tree produce byte-identical
reports regardless of rule execution order — CI diffs and committed
snapshots stay reproducible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.engine import Finding, registered_rules

__all__ = ["render_json", "render_sarif", "render_text", "summary_line"]


def _ordered(findings: Iterable[Finding]) -> List[Finding]:
    """The canonical (path, line, col, rule, message) report order."""
    return sorted(findings)


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: rule: message`` lines plus a count footer."""
    ordered = _ordered(findings)
    lines = [str(f) for f in ordered]
    lines.append(summary_line(ordered))
    return "\n".join(lines)


def summary_line(findings: Sequence[Finding]) -> str:
    """The one-line verdict printed after the findings."""
    if not findings:
        return "repro-lint: clean"
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    breakdown = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    plural = "s" if len(findings) != 1 else ""
    return f"repro-lint: {len(findings)} finding{plural} ({breakdown})"


def render_json(findings: Iterable[Finding]) -> str:
    """A JSON document: ``{"findings": [...], "count": N}``."""
    rows: List[dict] = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule,
            "message": f.message,
        }
        for f in _ordered(findings)
    ]
    return json.dumps({"findings": rows, "count": len(rows)}, indent=2)


def _relative_uri(path: str, root: Optional[Path]) -> str:
    """``path`` relative to ``root`` when possible — SARIF wants repo URIs."""
    candidate = Path(path)
    if root is not None:
        try:
            return candidate.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return candidate.as_posix()


def render_sarif(findings: Iterable[Finding], root: Optional[Path] = None) -> str:
    """A SARIF 2.1.0 log, consumable by ``github/codeql-action/upload-sarif``.

    ``root`` (default: the current working directory) is stripped from
    finding paths so GitHub can anchor annotations to repo files.
    """
    if root is None:
        root = Path.cwd()
    ordered = _ordered(findings)
    catalog = registered_rules()
    seen_rules = sorted({f.rule for f in ordered})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": catalog[rule_id].summary
                if rule_id in catalog
                else rule_id
            },
        }
        for rule_id in seen_rules
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(seen_rules)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error" if f.rule == "parse-error" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(f.path, root),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(f.col, 1),
                        },
                    }
                }
            ],
        }
        for f in ordered
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
