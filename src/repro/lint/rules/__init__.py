"""Built-in rule pack; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.flow import rules as flow
from repro.lint.rules import (
    api,
    faults,
    obs,
    provenance,
    solver,
    suppressions,
    units,
)

__all__ = [
    "api", "faults", "flow", "obs", "provenance", "solver",
    "suppressions", "units",
]
