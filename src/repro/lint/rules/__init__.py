"""Built-in rule pack; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import api, faults, obs, provenance, solver, units

__all__ = ["api", "faults", "obs", "provenance", "solver", "units"]
