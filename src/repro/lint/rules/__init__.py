"""Built-in rule pack; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import api, obs, provenance, solver, units

__all__ = ["api", "obs", "provenance", "solver", "units"]
