"""Simulation-loop hygiene rules for ``ocean/`` solver step functions.

The solver hot path must stay pure so campaign-scale runs are
reproducible and instrumentation stays centralized: printing, file I/O
and wall-clock reads belong in :mod:`repro.events.tracing`, never inside
``step``/``run``/tendency functions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = ["SolverClockRule", "SolverIoRule", "SolverPrintRule"]

#: Function/method names treated as solver step functions.
_STEP_NAMES = {"step", "run", "advance", "substep", "integrate", "_rhs"}
_STEP_PREFIXES = ("step_", "advance_", "_step")

#: ``time`` module attributes that read the wall clock.
_CLOCK_ATTRS = {"time", "perf_counter", "monotonic", "process_time"}


def _is_step_function(node: ast.AST) -> bool:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    name = node.name
    return name in _STEP_NAMES or name.startswith(_STEP_PREFIXES)


def _step_functions(ctx: FileContext) -> List[ast.AST]:
    return [node for node in ast.walk(ctx.tree) if _is_step_function(node)]


class _SolverRule(Rule):
    """Shared scoping: only ``ocean/`` modules, only step functions."""

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the ocean solver package is in scope."""
        return "/ocean/" in ctx.posix

    def _offending_calls(self, fn: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and self._is_offence(node):
                yield node

    def _is_offence(self, call: ast.Call) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag offending calls inside every solver step function."""
        for fn in _step_functions(ctx):
            for call in self._offending_calls(fn):
                yield ctx.finding(
                    self.id,
                    call,
                    f"{self._describe(call)} inside solver step function "
                    f"`{fn.name}`; route instrumentation through "
                    "repro.events.tracing",
                )

    def _describe(self, call: ast.Call) -> str:
        raise NotImplementedError


@register
class SolverPrintRule(_SolverRule):
    """No ``print`` in solver step functions."""

    id = "solver-print"
    summary = "print() call inside an ocean/ solver step function"

    def _is_offence(self, call: ast.Call) -> bool:
        return isinstance(call.func, ast.Name) and call.func.id == "print"

    def _describe(self, call: ast.Call) -> str:
        return "print() call"


@register
class SolverIoRule(_SolverRule):
    """No file I/O in solver step functions."""

    id = "solver-io"
    summary = "file I/O (open/…) inside an ocean/ solver step function"

    def _is_offence(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return True
        return isinstance(func, ast.Attribute) and func.attr in (
            "open", "write_text", "write_bytes", "read_text", "read_bytes",
        )

    def _describe(self, call: ast.Call) -> str:
        return "file I/O call"


@register
class SolverClockRule(_SolverRule):
    """No wall-clock reads in solver step functions."""

    id = "solver-clock"
    summary = "wall-clock read (time.time/…) inside an ocean/ solver step function"

    def _is_offence(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "time":
                return func.attr in _CLOCK_ATTRS
            if isinstance(func.value, ast.Name) and func.value.id == "datetime":
                return func.attr in ("now", "utcnow", "today")
            return False
        if isinstance(func, ast.Name):
            return func.id in ("perf_counter", "monotonic", "process_time")
        return False

    def _describe(self, call: ast.Call) -> str:
        return "wall-clock read"
