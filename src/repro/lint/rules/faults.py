"""Resilience hygiene: retries must go through ``repro.faults.RetryPolicy``.

Ad-hoc retry loops hide two bugs the fault-injection campaigns are designed
to expose: unbounded ``while True`` loops that spin forever when a fault is
persistent, and ``time.sleep`` backoff that stalls the *wall clock* instead
of the simulator.  :class:`~repro.faults.retry.RetryPolicy` bounds the
attempts, uses simulated (and seeded) backoff, and counts every retry in
telemetry — so inside ``repro`` it is the only sanctioned retry mechanism.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = ["FaultRetryRule"]


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and test.value is True


def _has_except_continue(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(stmt, ast.Continue) for stmt in ast.walk(handler))


def _retries_forever(loop: ast.While) -> bool:
    """A ``while True`` whose ``try``'s exception path loops again."""
    for stmt in loop.body:
        if isinstance(stmt, ast.Try) and any(
            _has_except_continue(h) for h in stmt.handlers
        ):
            return True
    return False


def _is_time_sleep(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return (
            isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr == "sleep"
        )
    return isinstance(func, ast.Name) and func.id == "sleep"


@register
class FaultRetryRule(Rule):
    """Flag ad-hoc retry loops that bypass ``RetryPolicy``."""

    id = "fault-retry"
    summary = "ad-hoc retry loop (while True + except/continue, or sleep in a loop)"

    def applies_to(self, ctx: FileContext) -> bool:
        """Library code only; tests may spin up whatever loops they need."""
        return "/repro/" in ctx.posix

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag unbounded retry loops and wall-clock backoff."""
        sleeps_seen: set = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                continue
            if isinstance(node, ast.While) and _is_while_true(node) and _retries_forever(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "unbounded retry loop (`while True` re-attempting after an "
                    "exception); use repro.faults.RetryPolicy, which bounds "
                    "attempts and backs off in simulated time",
                )
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and _is_time_sleep(inner)
                    and id(inner) not in sleeps_seen
                ):
                    sleeps_seen.add(id(inner))
                    yield ctx.finding(
                        self.id,
                        inner,
                        "time.sleep inside a loop stalls the wall clock, not "
                        "the simulator; use repro.faults.RetryPolicy backoff "
                        "(sim.timeout) instead",
                    )
