"""Resilience hygiene: retries must go through ``repro.faults.RetryPolicy``.

Ad-hoc retry loops hide two bugs the fault-injection campaigns are designed
to expose: unbounded ``while True`` loops that spin forever when a fault is
persistent, and ``time.sleep`` backoff that stalls the *wall clock* instead
of the simulator.  :class:`~repro.faults.retry.RetryPolicy` bounds the
attempts, uses simulated (and seeded) backoff, and counts every retry in
telemetry — so inside ``repro`` it is the only sanctioned retry mechanism.

In modules that use ``concurrent.futures``, the rule additionally flags
``future.result()`` / ``as_completed()`` / ``wait()`` calls with no
``timeout`` argument: a hung worker then hangs the sweep forever with no
supervision ever noticing.  An *explicit* ``timeout=None`` is accepted — it
marks the unbounded wait as a decision rather than an oversight (the
unsupervised engine does exactly this, with a comment, and points at
:class:`~repro.exec.supervise.SupervisedExecutor` for deadline coverage).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = ["FaultRetryRule"]


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and test.value is True


def _has_except_continue(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(stmt, ast.Continue) for stmt in ast.walk(handler))


def _retries_forever(loop: ast.While) -> bool:
    """A ``while True`` whose ``try``'s exception path loops again."""
    for stmt in loop.body:
        if isinstance(stmt, ast.Try) and any(
            _has_except_continue(h) for h in stmt.handlers
        ):
            return True
    return False


def _is_time_sleep(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute):
        return (
            isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr == "sleep"
        )
    return isinstance(func, ast.Name) and func.id == "sleep"


def _imports_futures(tree: ast.AST) -> bool:
    """True when the module imports ``concurrent.futures`` (any spelling)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.startswith("concurrent") for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.module.startswith("concurrent"):
                return True
    return False


def _has_timeout_arg(call: ast.Call) -> bool:
    """True when the call passes ``timeout`` positionally or by keyword.

    ``timeout=None`` counts: writing it out states "wait forever" as a
    deliberate choice, which is all the rule asks for.
    """
    if any(kw.arg == "timeout" for kw in call.keywords):
        return True
    # `.result(5)` / `wait(fs, 5)`: timeout is the first positional arg of
    # result() and the second of wait()/as_completed().
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "result":
        return len(call.args) >= 1
    return len(call.args) >= 2


def _unbounded_wait_call(call: ast.Call) -> str:
    """The offending wait spelling, or ``""`` when the call is fine."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "result":
        # Only futures are waited on with .result() in modules importing
        # concurrent.futures (the applies-to gate).
        if not _has_timeout_arg(call):
            return "future.result()"
        return ""
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in ("as_completed", "wait") and not _has_timeout_arg(call):
        return f"{name}()"
    return ""


@register
class FaultRetryRule(Rule):
    """Flag ad-hoc retry loops that bypass ``RetryPolicy``."""

    id = "fault-retry"
    summary = (
        "ad-hoc retry loop (while True + except/continue, sleep in a loop) "
        "or a futures wait with no timeout decision"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Library code only; tests may spin up whatever loops they need."""
        return "/repro/" in ctx.posix

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag unbounded retry loops, wall-clock backoff, untimed waits."""
        if _imports_futures(ctx.tree):
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                offender = _unbounded_wait_call(node)
                if offender:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{offender} with no timeout waits forever on a hung "
                        "worker; pass a deadline, or an explicit timeout=None "
                        "to record that waiting forever is intentional",
                    )
        sleeps_seen: set = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                continue
            if isinstance(node, ast.While) and _is_while_true(node) and _retries_forever(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "unbounded retry loop (`while True` re-attempting after an "
                    "exception); use repro.faults.RetryPolicy, which bounds "
                    "attempts and backs off in simulated time",
                )
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Call)
                    and _is_time_sleep(inner)
                    and id(inner) not in sleeps_seen
                ):
                    sleeps_seen.add(id(inner))
                    yield ctx.finding(
                        self.id,
                        inner,
                        "time.sleep inside a loop stalls the wall clock, not "
                        "the simulator; use repro.faults.RetryPolicy backoff "
                        "(sim.timeout) instead",
                    )
