"""Telemetry-discipline rules.

* ``obs-naming`` — string-literal metric names passed to the telemetry
  helpers (``obs.counter`` / ``obs.gauge`` / ``obs.observe`` and the
  registry's ``counter`` / ``gauge`` / ``histogram`` constructors) must
  follow the project convention ``repro_<layer>_<name>_<unit>`` with a
  unit suffix from :data:`repro.obs.naming.METRIC_UNITS`.  Keeping names
  well-formed here is what keeps dashboards and the Prometheus exposition
  queryable without per-metric cleanup.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding, Rule, register
from repro.obs.naming import METRIC_NAME_RE, METRIC_UNITS

__all__ = ["ObsNamingRule"]

#: Call names whose first string-literal argument is a metric name.
_METRIC_CALLS = frozenset({"counter", "gauge", "histogram", "observe"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class ObsNamingRule(Rule):
    """Metric names must follow ``repro_<layer>_<name>_<unit>``."""

    id = "obs-naming"
    summary = (
        "metric name passed to a telemetry helper does not match "
        "repro_<layer>_<name>_<unit> (unit one of "
        + "/".join(METRIC_UNITS)
        + ")"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag malformed string-literal metric names at telemetry calls."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if _call_name(node) not in _METRIC_CALLS:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                continue
            name = first.value
            if not name.startswith("repro_"):
                # Not a metric name — `counter`/`observe` are common words
                # (str.count lookalikes, numpy, etc.); only police our own
                # namespace.
                continue
            if not METRIC_NAME_RE.match(name):
                yield ctx.finding(
                    self.id,
                    first,
                    f"metric name {name!r} violates repro_<layer>_<name>_<unit> "
                    f"(unit must be one of {', '.join(METRIC_UNITS)})",
                )
