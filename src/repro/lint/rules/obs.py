"""Telemetry-discipline rules.

* ``obs-naming`` — string-literal metric names passed to the telemetry
  helpers (``obs.counter`` / ``obs.gauge`` / ``obs.observe`` and the
  registry's ``counter`` / ``gauge`` / ``histogram`` constructors) must
  follow the project convention ``repro_<layer>_<name>_<unit>`` with a
  unit suffix from :data:`repro.obs.naming.METRIC_UNITS`.  Keeping names
  well-formed here is what keeps dashboards and the Prometheus exposition
  queryable without per-metric cleanup.

  The same rule polices the timeline/watchdog namespaces: series names
  registered via ``add_probe`` must match
  ``repro_timeline_<layer>_<name>_<unit>``, ``WatchRule(series=...)``
  selectors the same grammar (a trailing ``*`` prefix wildcard allowed),
  and ``WatchRule(name=...)`` must be snake_case so the derived
  ``repro_alert_<name>_total`` counter is well-formed.

  Run-registry APIs are covered too: metric names handed to
  ``compute_trend`` / ``compute_trends`` / ``run_metric_value`` and the
  ``name=`` / ``series=`` values inside ``parse_where`` clause literals
  must be well-formed metric *or* timeline-series names — a typo there
  silently matches nothing across every ingested run, which is exactly
  the failure a static check prevents.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.errors import ConfigurationError
from repro.lint.engine import FileContext, Finding, Rule, register
from repro.obs.naming import (
    METRIC_NAME_RE,
    METRIC_UNITS,
    RULE_NAME_RE,
    TIMELINE_SERIES_RE,
    TIMELINE_UNITS,
    validate_timeline_series_name,
)

__all__ = ["ObsNamingRule"]

#: Call names whose first string-literal argument is a metric name.
_METRIC_CALLS = frozenset({"counter", "gauge", "histogram", "observe"})

#: Call names whose first string-literal argument is a timeline series name.
_PROBE_CALLS = frozenset({"add_probe"})

#: Constructor names whose keyword literals carry watch-rule naming.
_WATCH_CALLS = frozenset({"WatchRule"})

#: Run-registry calls -> positional index of their metric-name argument
#: (``compute_trends`` takes a list/tuple of names at that index).
_STORE_NAME_CALLS = {
    "compute_trend": 1,
    "compute_trends": 1,
    "run_metric_value": 1,
}

#: Calls whose first argument holds ``k=v[,k=v...]`` where-clause literals.
_WHERE_CALLS = frozenset({"parse_where"})

#: Where-clause keys whose values are metric/series names.
_WHERE_NAME_KEYS = ("name", "series")


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class ObsNamingRule(Rule):
    """Metric names must follow ``repro_<layer>_<name>_<unit>``."""

    id = "obs-naming"
    summary = (
        "metric name passed to a telemetry helper does not match "
        "repro_<layer>_<name>_<unit> (unit one of "
        + "/".join(METRIC_UNITS)
        + ")"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag malformed string-literal metric names at telemetry calls."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            call = _call_name(node)
            if call in _WATCH_CALLS:
                yield from self._check_watch_rule(ctx, node)
            if call in _STORE_NAME_CALLS:
                yield from self._check_store_names(ctx, node, _STORE_NAME_CALLS[call])
            if call in _WHERE_CALLS:
                yield from self._check_where_clauses(ctx, node)
            if not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                continue
            name = first.value
            if not name.startswith("repro_"):
                # Not a metric name — `counter`/`observe` are common words
                # (str.count lookalikes, numpy, etc.); only police our own
                # namespace.
                continue
            if call in _PROBE_CALLS:
                if not TIMELINE_SERIES_RE.match(name):
                    yield ctx.finding(
                        self.id,
                        first,
                        f"timeline series {name!r} violates "
                        f"repro_timeline_<layer>_<name>_<unit> "
                        f"(unit must be one of {', '.join(TIMELINE_UNITS)})",
                    )
            elif call in _METRIC_CALLS and not METRIC_NAME_RE.match(name):
                yield ctx.finding(
                    self.id,
                    first,
                    f"metric name {name!r} violates repro_<layer>_<name>_<unit> "
                    f"(unit must be one of {', '.join(METRIC_UNITS)})",
                )

    def _check_watch_rule(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        """Validate the naming-bearing literals of a ``WatchRule(...)`` call."""
        for keyword in node.keywords:
            value = keyword.value
            if not isinstance(value, ast.Constant) or not isinstance(value.value, str):
                continue
            if keyword.arg == "series":
                try:
                    validate_timeline_series_name(value.value)
                except ConfigurationError:
                    yield ctx.finding(
                        self.id,
                        value,
                        f"watch-rule selector {value.value!r} violates "
                        f"repro_timeline_<layer>_<name>_<unit> "
                        f"(trailing '*' prefix wildcard allowed)",
                    )
            elif keyword.arg == "name" and not RULE_NAME_RE.match(value.value):
                yield ctx.finding(
                    self.id,
                    value,
                    f"watch-rule name {value.value!r} must be snake_case so "
                    f"repro_alert_<name>_total is well-formed",
                )

    @staticmethod
    def _store_name_ok(name: str) -> bool:
        """Registry/trend names may be metric *or* timeline-series shaped."""
        return bool(METRIC_NAME_RE.match(name) or TIMELINE_SERIES_RE.match(name))

    def _check_store_names(
        self, ctx: FileContext, node: ast.Call, index: int
    ) -> Iterator[Finding]:
        """Validate metric-name literals at a run-registry trend call."""
        if len(node.args) <= index:
            return
        arg = node.args[index]
        literals = (
            list(arg.elts) if isinstance(arg, (ast.List, ast.Tuple)) else [arg]
        )
        for literal in literals:
            if not isinstance(literal, ast.Constant) or not isinstance(
                literal.value, str
            ):
                continue
            name = literal.value
            if name.startswith("repro_") and not self._store_name_ok(name):
                yield ctx.finding(
                    self.id,
                    literal,
                    f"store metric name {name!r} matches neither "
                    f"repro_<layer>_<name>_<unit> nor "
                    f"repro_timeline_<layer>_<name>_<unit> — it would select "
                    f"nothing across every ingested run",
                )

    def _check_where_clauses(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        """Validate name/series values inside ``parse_where`` literals."""
        if not node.args:
            return
        arg = node.args[0]
        literals = (
            list(arg.elts) if isinstance(arg, (ast.List, ast.Tuple)) else [arg]
        )
        for literal in literals:
            if not isinstance(literal, ast.Constant) or not isinstance(
                literal.value, str
            ):
                continue
            for part in literal.value.split(","):
                key, _, value = part.strip().partition("=")
                if key.strip() not in _WHERE_NAME_KEYS:
                    continue
                value = value.strip()
                # A trailing '*' is the query grammar's prefix wildcard; the
                # abbreviation is deliberate, so only police full names.
                if (
                    value.startswith("repro_")
                    and not value.endswith("*")
                    and not self._store_name_ok(value)
                ):
                    yield ctx.finding(
                        self.id,
                        literal,
                        f"where-clause {key.strip()}={value!r} matches neither "
                        f"repro_<layer>_<name>_<unit> nor "
                        f"repro_timeline_<layer>_<name>_<unit> (use a trailing "
                        f"'*' for a deliberate prefix match)",
                    )
