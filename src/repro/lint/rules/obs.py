"""Telemetry-discipline rules.

* ``obs-naming`` — string-literal metric names passed to the telemetry
  helpers (``obs.counter`` / ``obs.gauge`` / ``obs.observe`` and the
  registry's ``counter`` / ``gauge`` / ``histogram`` constructors) must
  follow the project convention ``repro_<layer>_<name>_<unit>`` with a
  unit suffix from :data:`repro.obs.naming.METRIC_UNITS`.  Keeping names
  well-formed here is what keeps dashboards and the Prometheus exposition
  queryable without per-metric cleanup.

  The same rule polices the timeline/watchdog namespaces: series names
  registered via ``add_probe`` must match
  ``repro_timeline_<layer>_<name>_<unit>``, ``WatchRule(series=...)``
  selectors the same grammar (a trailing ``*`` prefix wildcard allowed),
  and ``WatchRule(name=...)`` must be snake_case so the derived
  ``repro_alert_<name>_total`` counter is well-formed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.errors import ConfigurationError
from repro.lint.engine import FileContext, Finding, Rule, register
from repro.obs.naming import (
    METRIC_NAME_RE,
    METRIC_UNITS,
    RULE_NAME_RE,
    TIMELINE_SERIES_RE,
    TIMELINE_UNITS,
    validate_timeline_series_name,
)

__all__ = ["ObsNamingRule"]

#: Call names whose first string-literal argument is a metric name.
_METRIC_CALLS = frozenset({"counter", "gauge", "histogram", "observe"})

#: Call names whose first string-literal argument is a timeline series name.
_PROBE_CALLS = frozenset({"add_probe"})

#: Constructor names whose keyword literals carry watch-rule naming.
_WATCH_CALLS = frozenset({"WatchRule"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class ObsNamingRule(Rule):
    """Metric names must follow ``repro_<layer>_<name>_<unit>``."""

    id = "obs-naming"
    summary = (
        "metric name passed to a telemetry helper does not match "
        "repro_<layer>_<name>_<unit> (unit one of "
        + "/".join(METRIC_UNITS)
        + ")"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag malformed string-literal metric names at telemetry calls."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            call = _call_name(node)
            if call in _WATCH_CALLS:
                yield from self._check_watch_rule(ctx, node)
            if not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                continue
            name = first.value
            if not name.startswith("repro_"):
                # Not a metric name — `counter`/`observe` are common words
                # (str.count lookalikes, numpy, etc.); only police our own
                # namespace.
                continue
            if call in _PROBE_CALLS:
                if not TIMELINE_SERIES_RE.match(name):
                    yield ctx.finding(
                        self.id,
                        first,
                        f"timeline series {name!r} violates "
                        f"repro_timeline_<layer>_<name>_<unit> "
                        f"(unit must be one of {', '.join(TIMELINE_UNITS)})",
                    )
            elif call in _METRIC_CALLS and not METRIC_NAME_RE.match(name):
                yield ctx.finding(
                    self.id,
                    first,
                    f"metric name {name!r} violates repro_<layer>_<name>_<unit> "
                    f"(unit must be one of {', '.join(METRIC_UNITS)})",
                )

    def _check_watch_rule(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        """Validate the naming-bearing literals of a ``WatchRule(...)`` call."""
        for keyword in node.keywords:
            value = keyword.value
            if not isinstance(value, ast.Constant) or not isinstance(value.value, str):
                continue
            if keyword.arg == "series":
                try:
                    validate_timeline_series_name(value.value)
                except ConfigurationError:
                    yield ctx.finding(
                        self.id,
                        value,
                        f"watch-rule selector {value.value!r} violates "
                        f"repro_timeline_<layer>_<name>_<unit> "
                        f"(trailing '*' prefix wildcard allowed)",
                    )
            elif keyword.arg == "name" and not RULE_NAME_RE.match(value.value):
                yield ctx.finding(
                    self.id,
                    value,
                    f"watch-rule name {value.value!r} must be snake_case so "
                    f"repro_alert_<name>_total is well-formed",
                )
