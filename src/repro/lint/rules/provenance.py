"""Paper-provenance rules.

:mod:`repro.paper` is the single transcription of the paper's measured
values.  Two rules keep it honest:

* ``paper-doc`` — every module-level constant in ``paper.py`` must carry
  a ``#:`` doc-comment citing its section/figure/equation.  A single
  ``#:`` comment may document a contiguous group of assignments (the
  file's existing convention).
* ``paper-redef`` — no other module may re-embed a *distinctive* paper
  value (|value| ≥ 1000) as a module-level constant, class attribute or
  parameter default; it must import the named constant instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = ["PaperDocRule", "PaperRedefinitionRule"]

#: Paper constants smaller than this are too generic to police (60, 8.0 ...).
_DISTINCTIVE_MIN = 1000.0

#: Relative tolerance for float equality against paper values.
_REL_TOL = 1e-9


def _module_constant_targets(node: ast.stmt) -> List[str]:
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target.id] if node.value is not None else []
    return []


@register
class PaperDocRule(Rule):
    """Constants in paper.py need a ``#:`` provenance comment."""

    id = "paper-doc"
    summary = (
        "module-level constant in paper.py lacks a '#:' doc-comment citing "
        "the paper section/figure/equation it was transcribed from"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the paper transcription module is in scope."""
        return ctx.path.name == "paper.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag undocumented constants, honouring group doc-comments."""
        spans: Dict[int, int] = {}  # assignment start line → end line
        names: Dict[int, List[str]] = {}
        for node in ctx.tree.body:
            targets = [
                name for name in _module_constant_targets(node)
                if not name.startswith("_") and name != "__all__"
            ]
            if not targets:
                continue
            spans[node.lineno] = node.end_lineno or node.lineno
            names[node.lineno] = targets
        end_to_start = {end: start for start, end in spans.items()}
        documented: Dict[int, bool] = {}

        def is_documented(start: int) -> bool:
            if start in documented:
                return documented[start]
            documented[start] = False  # cycle guard
            prev = start - 1
            verdict = False
            if prev >= 1:
                text = ctx.lines[prev - 1].strip()
                if text.startswith("#:"):
                    verdict = True
                elif prev in end_to_start:
                    # Previous line closes another constant: inherit its doc
                    # status (one '#:' comment may head a contiguous group).
                    verdict = is_documented(end_to_start[prev])
            documented[start] = verdict
            return verdict

        for start in sorted(spans):
            if is_documented(start):
                continue
            for name in names[start]:
                yield Finding(
                    path=str(ctx.path),
                    line=start,
                    col=1,
                    rule=self.id,
                    message=(
                        f"paper constant `{name}` has no '#:' doc-comment "
                        "citing its source in the paper"
                    ),
                )


def _distinctive_paper_values() -> Dict[str, str]:
    import repro.paper

    table: Dict[str, str] = {}
    for name in sorted(vars(repro.paper)):
        value = getattr(repro.paper, name)
        if name.startswith("_") or isinstance(value, bool):
            continue
        if not isinstance(value, (int, float)):
            continue
        if abs(value) < _DISTINCTIVE_MIN:
            continue
        table.setdefault(_value_key(value), name)
    return table


def _value_key(value: float) -> str:
    return f"{float(value):.12e}"


def _literal_number(node: Optional[ast.expr]) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None


@register
class PaperRedefinitionRule(Rule):
    """Paper values re-embedded outside paper.py/units.py."""

    id = "paper-redef"
    summary = (
        "constant, class attribute or parameter default outside paper.py "
        "re-embeds a distinctive paper value; import repro.paper instead"
    )

    _table: Optional[Dict[str, str]] = None

    def applies_to(self, ctx: FileContext) -> bool:
        """Library modules only; paper.py/units.py own these values."""
        if "/repro/" not in ctx.posix or "/repro/lint/" in ctx.posix:
            return False
        return ctx.path.name not in ("paper.py", "units.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag assignments/defaults equal to a distinctive paper value."""
        if PaperRedefinitionRule._table is None:
            PaperRedefinitionRule._table = _distinctive_paper_values()
        table = PaperRedefinitionRule._table

        def lookup(node: Optional[ast.expr]) -> Optional[Tuple[float, str]]:
            value = _literal_number(node)
            if value is None:
                return None
            name = table.get(_value_key(value))
            return (value, name) if name is not None else None

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                hit = lookup(value)
                if hit is not None:
                    yield ctx.finding(
                        self.id, node,
                        f"value {hit[0]:g} duplicates repro.paper.{hit[1]}; "
                        "import the constant",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    hit = lookup(default)
                    if hit is not None:
                        yield ctx.finding(
                            self.id, default,
                            f"default {hit[0]:g} duplicates "
                            f"repro.paper.{hit[1]}; import the constant",
                        )
