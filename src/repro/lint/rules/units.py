"""Units-discipline rules.

The library's internal convention (see :mod:`repro.units`) is seconds /
bytes / watts / joules.  Two rules police it:

* ``unit-mix`` — additive arithmetic or comparisons between identifiers
  whose name suffixes denote *different* units (``x_gb + y_bytes``,
  ``t_hours < t_seconds``).  Multiplication and division are exempt —
  crossing units there is how physics works (W × s = J).
* ``magic-number`` — numeric literals ≥ 1e6 inside ``core/``,
  ``pipelines/``, ``power/`` or ``storage/`` whose value duplicates a
  named constant from :mod:`repro.units` or :mod:`repro.paper`.
"""

from __future__ import annotations

import ast
import math
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = ["MagicNumberRule", "UnitMixRule", "unit_of_identifier"]

#: suffix → (dimension family, canonical unit). Single-letter suffixes are
#: deliberately absent (``_s`` is usually "per second" in rate names).
_UNIT_SUFFIXES: Dict[str, Tuple[str, str]] = {
    "ms": ("time", "milliseconds"),
    "sec": ("time", "seconds"),
    "secs": ("time", "seconds"),
    "seconds": ("time", "seconds"),
    "minutes": ("time", "minutes"),
    "hour": ("time", "hours"),
    "hours": ("time", "hours"),
    "day": ("time", "days"),
    "days": ("time", "days"),
    "months": ("time", "months"),
    "years": ("time", "years"),
    "bytes": ("data", "bytes"),
    "kb": ("data", "kilobytes"),
    "mb": ("data", "megabytes"),
    "gb": ("data", "gigabytes"),
    "tb": ("data", "terabytes"),
    "watts": ("power", "watts"),
    "kw": ("power", "kilowatts"),
    "mw": ("power", "megawatts"),
    "joules": ("energy", "joules"),
    "kwh": ("energy", "kilowatt-hours"),
    "mwh": ("energy", "megawatt-hours"),
}

#: Paths (posix fragments) where magic-number applies.
_MAGIC_SCOPES = (
    "/repro/core/",
    "/repro/pipelines/",
    "/repro/power/",
    "/repro/storage/",
)

#: Literals below this never count as magic numbers.
_MAGIC_THRESHOLD = 1e6


def _identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def unit_of_identifier(name: str) -> Optional[Tuple[str, str]]:
    """``(family, unit)`` implied by an identifier's suffix, or ``None``.

    Rate names (anything containing ``_per_``) carry compound units and
    are ignored.
    """
    lowered = name.lower()
    if "_per_" in lowered:
        return None
    tail = lowered.rsplit("_", 1)[-1]
    return _UNIT_SUFFIXES.get(tail)


def _unit_of_node(node: ast.AST) -> Optional[Tuple[str, str, str]]:
    name = _identifier(node)
    if name is None:
        return None
    unit = unit_of_identifier(name)
    if unit is None:
        return None
    return (name, unit[0], unit[1])


@register
class UnitMixRule(Rule):
    """Additive arithmetic between identifiers of different units."""

    id = "unit-mix"
    summary = (
        "addition/subtraction/comparison mixes identifiers whose suffixes "
        "denote different units (e.g. *_gb with *_bytes)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag +/-/comparison whose operands carry clashing unit suffixes."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                pairs = [(node.left, node.right)]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                pairs = list(zip(operands, operands[1:]))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node.target, node.value)]
            else:
                continue
            for left, right in pairs:
                a = _unit_of_node(left)
                b = _unit_of_node(right)
                if a is None or b is None:
                    continue
                if a[1] != b[1] or a[2] != b[2]:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"`{a[0]}` is in {a[2]} but `{b[0]}` is in {b[2]}; "
                        "convert through repro.units before combining",
                    )


def _known_constants() -> Dict[str, str]:
    """value-key → qualified name for every large repro.units/paper scalar."""
    import repro.paper
    import repro.units

    table: Dict[str, str] = {}
    for module, label in ((repro.units, "repro.units"), (repro.paper, "repro.paper")):
        for name in sorted(vars(module)):
            value = getattr(module, name)
            if name.startswith("_") or isinstance(value, bool):
                continue
            if not isinstance(value, (int, float)):
                continue
            if abs(value) < _MAGIC_THRESHOLD:
                continue
            table.setdefault(_value_key(value), f"{label}.{name}")
    return table


def _value_key(value: float) -> str:
    return f"{float(value):.12e}"


@register
class MagicNumberRule(Rule):
    """Large literals that duplicate a named units/paper constant."""

    id = "magic-number"
    summary = (
        "numeric literal >= 1e6 in core/pipelines/power/storage duplicates "
        "a named constant from repro.units or repro.paper"
    )

    _table: Optional[Dict[str, str]] = None

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the four unit-sensitive subpackages are in scope."""
        return any(fragment in ctx.posix for fragment in _MAGIC_SCOPES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag large numeric literals equal to a known named constant."""
        if MagicNumberRule._table is None:
            MagicNumberRule._table = _known_constants()
        table = MagicNumberRule._table
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if not math.isfinite(value) or abs(value) < _MAGIC_THRESHOLD:
                continue
            name = table.get(_value_key(value))
            if name is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"literal {value!r} duplicates {name}; use the named constant",
                )
