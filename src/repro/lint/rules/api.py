"""API-hygiene rules: mutable defaults, bare excepts, ``__all__`` checks,
and calls into deprecated (shimmed) legacy signatures."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = [
    "ApiDeprecatedRule",
    "BareExceptRule",
    "MissingAllRule",
    "MutableDefaultRule",
    "StaleAllRule",
]

#: Calls to these builtins as a default build a fresh mutable each *def*,
#: shared across calls — same trap as a literal.
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


@register
class MutableDefaultRule(Rule):
    """Mutable default argument values."""

    id = "mutable-default"
    summary = "function parameter default is a mutable object ([], {}, set(), ...)"

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag list/dict/set literals (or factories) used as defaults."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self.id, default,
                        f"mutable default in `{node.name}(...)`; use None "
                        "and create the object inside the function",
                    )


@register
class BareExceptRule(Rule):
    """``except:`` without an exception type."""

    id = "bare-except"
    summary = "bare 'except:' swallows SystemExit/KeyboardInterrupt"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag exception handlers with no exception type."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.id, node,
                    "bare 'except:'; catch a specific exception "
                    "(or at least Exception)",
                )


def _has_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in node.targets):
                return True
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id == "__all__":
                return True
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if node.target.id == "__all__":
                return True
    return False


@register
class MissingAllRule(Rule):
    """Public library modules must declare ``__all__``."""

    id = "missing-all"
    summary = "public module under repro/ lacks an __all__ declaration"

    def applies_to(self, ctx: FileContext) -> bool:
        """Library modules only; `_private` and `__main__` are exempt."""
        if "/repro/" not in ctx.posix:
            return False
        name = ctx.path.name
        return name == "__init__.py" or not name.startswith("_")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag modules with no module-level ``__all__`` assignment."""
        if not _has_all(ctx.tree):
            yield Finding(
                path=str(ctx.path), line=1, col=1, rule=self.id,
                message="public module has no __all__; declare its API surface",
            )


def _literal_all_names(tree: ast.Module) -> Optional[List[ast.Constant]]:
    for node in tree.body:
        value = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            value = node.value
        if isinstance(value, (ast.List, ast.Tuple)):
            elements = [
                e for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if len(elements) == len(value.elts):
                return elements
    return None


def _bound_names(tree: ast.Module) -> Optional[Set[str]]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    return None  # star import: cannot verify statically
                bound = alias.asname or alias.name.split(".")[0]
                names.add(bound)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (version guards, optional deps).
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    names.add(child.name)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        names.update(_target_names(target))
                elif isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        if alias.name == "*":
                            return None
                        names.add(alias.asname or alias.name.split(".")[0])
    return names


def _target_names(target: ast.expr) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in target.elts:
            out |= _target_names(element)
        return out
    return set()


#: Sweep-family methods that went keyword-only in the exec API redesign.
_KEYWORD_ONLY_SWEEPS = {
    "sweep",
    "storage_vs_rate",
    "energy_vs_rate",
    "failure_aware_sweep",
}

#: Builders that went keyword-only in the scenario API redesign, mapped to
#: the number of positional arguments their modern spelling still takes
#: (the leading ``sim``/``workdir``-style anchors).  Anything beyond that
#: hits the warn-once legacy shim.
_KEYWORD_ONLY_BUILDERS = {
    "ComputeCluster": 1,
    "StorageCluster": 1,
    "LustreFileSystem": 1,
    "SimulatedPlatform": 0,
    "RealPlatform": 1,
    "InTransitPipeline": 0,
}


def _looks_like_pipeline(arg: ast.expr) -> bool:
    """Does this expression plausibly evaluate to a Pipeline instance?"""
    if isinstance(arg, ast.Call):
        func = arg.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name.endswith("Pipeline")
    if isinstance(arg, ast.Name):
        return arg.id == "pipeline" or arg.id.endswith("_pipeline")
    if isinstance(arg, ast.Attribute):
        return arg.attr == "pipeline" or arg.attr.endswith("_pipeline")
    return False


@register
class ApiDeprecatedRule(Rule):
    """Calls into legacy signatures now served by deprecation shims."""

    id = "api-deprecated"
    summary = ("call uses a shimmed legacy signature; migrate to "
               "Pipeline.execute(RunRequest) / keyword-only sweeps")

    def applies_to(self, ctx: FileContext) -> bool:
        """Everywhere except the shims themselves (they ARE the legacy API)."""
        return not (
            ctx.posix.endswith("/repro/pipelines/platform.py")
            or ctx.posix.endswith("/repro/core/whatif.py")
            or ctx.posix.endswith("/repro/exec/api.py")
            or ctx.posix.endswith("/repro/cluster/machine.py")
            or ctx.posix.endswith("/repro/storage/lustre.py")
            or ctx.posix.endswith("/repro/pipelines/intransit.py")
            or ctx.posix.endswith("/repro/legacy.py")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``platform.run(pipeline, ...)``, positional sweep calls and
        positional builder construction."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            builder = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if builder in _KEYWORD_ONLY_BUILDERS:
                allowed = _KEYWORD_ONLY_BUILDERS[builder]
                if len(node.args) > allowed or any(
                    isinstance(a, ast.Starred) for a in node.args
                ):
                    yield ctx.finding(
                        self.id, node,
                        f"positional arguments to {builder}(...) hit the "
                        "warn-once legacy shim; pass keywords or "
                        "config=<scenario sub-config> (see docs/MIGRATION.md)",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "run":
                keyword_names = {k.arg for k in node.keywords}
                first = node.args[0] if node.args else None
                if (first is not None and _looks_like_pipeline(first)) or (
                    keyword_names & {"pipeline", "faults", "checkpoints"}
                ):
                    yield ctx.finding(
                        self.id, node,
                        "platform.run(pipeline, ...) is a deprecation shim; "
                        "use Pipeline.execute(RunRequest(...)) "
                        "(see docs/MIGRATION.md)",
                    )
            elif func.attr in _KEYWORD_ONLY_SWEEPS and node.args:
                yield ctx.finding(
                    self.id, node,
                    f"positional arguments to .{func.attr}(...) hit the "
                    "deprecation shim; pass intervals_hours=/duration_seconds= "
                    "as keywords (see docs/MIGRATION.md)",
                )


@register
class StaleAllRule(Rule):
    """Every ``__all__`` entry must resolve to a module-level name."""

    id = "stale-all"
    summary = "__all__ lists a name the module does not define or import"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``__all__`` entries with no matching top-level binding."""
        entries = _literal_all_names(ctx.tree)
        if entries is None:
            return
        bound = _bound_names(ctx.tree)
        if bound is None:
            return
        for entry in entries:
            if entry.value not in bound:
                yield ctx.finding(
                    self.id, entry,
                    f"__all__ exports `{entry.value}` but the module never "
                    "defines or imports it",
                )
