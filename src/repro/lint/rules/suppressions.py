"""The ``unused-suppression`` rule.

The detection itself lives in :class:`repro.lint.engine.LintRunner` —
whether a ``# repro-lint: disable=...`` comment matched anything is only
knowable after every other rule has run.  This class exists so the check
has a catalog entry and participates in ``--select``/``--disable`` and
suppression like any ordinary rule.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.engine import FileContext, Finding, Rule, register

__all__ = ["UnusedSuppressionRule"]


@register
class UnusedSuppressionRule(Rule):
    """Suppression comments that no longer match any finding."""

    id = "unused-suppression"
    summary = (
        "a `# repro-lint: disable=...` comment matched no finding of the "
        "named rule; stale suppressions hide future regressions"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Engine-driven; the runner emits the findings after all rules ran."""
        return iter(())
