"""Constants and expected values transcribed from the paper.

Benchmarks import these to print paper-vs-measured comparisons, and library
models anchor their *defaults* here (e.g. the reference timestep or the
storage rack's measured idle power) so every paper value lives in exactly
one place — the ``paper-redef`` lint rule enforces this.  The library's
computation itself never hard-wires these numbers: callers can override
every default.

Every constant carries a ``#:`` doc-comment citing the section, figure or
equation it was transcribed from (enforced by the ``paper-doc`` lint rule).
"""

from __future__ import annotations

from repro.units import TB

__all__ = [
    "CADDY_NODES", "CADDY_CORES", "CADDY_CAGES",
    "STORAGE_CAPACITY_BYTES", "STORAGE_BANDWIDTH_BYTES_PER_S",
    "GRID_RESOLUTION_KM", "TIMESTEP_SECONDS", "CAMPAIGN_TIMESTEPS",
    "SAMPLING_INTERVALS_HOURS",
    "TIME_SAVINGS", "ENERGY_SAVINGS",
    "POST_STORAGE_GB", "INSITU_STORAGE_GB_MAX", "STORAGE_REDUCTION_MIN",
    "STORAGE_IDLE_W", "STORAGE_FULL_W", "STORAGE_PROPORTIONALITY",
    "COMPUTE_IDLE_W", "COMPUTE_LOADED_W", "COMPUTE_DYNAMIC_RANGE",
    "EQ5_SYSTEM", "EQ5_T_SIM", "EQ5_ALPHA_S_PER_GB", "EQ5_BETA_S_PER_IMAGE",
    "MODEL_MAX_ERROR", "N_OUTPUTS",
    "WHATIF_YEARS", "WHATIF_STORAGE_BUDGET_GB",
    "WHATIF_POST_FORCED_INTERVAL_DAYS", "WHATIF_ENERGY_SAVINGS",
]

# ---------------------------------------------------------------- Section IV
#: Compute cluster ("Caddy"): nodes, cores, cages.
CADDY_NODES = 150
CADDY_CORES = 2_400
CADDY_CAGES = 15

#: Storage cluster: capacity and measured aggregate random R/W bandwidth.
STORAGE_CAPACITY_BYTES = 7.7 * TB
STORAGE_BANDWIDTH_BYTES_PER_S = 160e6

#: Reference campaign: 60 km grid, 6 simulated months, 30-minute timesteps.
GRID_RESOLUTION_KM = 60.0
TIMESTEP_SECONDS = 1_800.0
CAMPAIGN_TIMESTEPS = 8_640

#: The three measured sampling cadences (simulated hours between outputs).
SAMPLING_INTERVALS_HOURS = (8.0, 24.0, 72.0)

# ----------------------------------------------------------------- Section V
#: Measured execution-time savings of in-situ vs post-processing (Fig. 3).
TIME_SAVINGS = {8.0: 0.51, 24.0: 0.38, 72.0: 0.19}
#: Measured energy savings (Fig. 6) — identical, because power is flat.
ENERGY_SAVINGS = {8.0: 0.50, 24.0: 0.38, 72.0: 0.19}

#: Post-processing storage requirements in GB (Fig. 7).
POST_STORAGE_GB = {8.0: 230.0, 24.0: 80.0, 72.0: 27.0}
#: In-situ storage stays under 1 GB at every cadence (Fig. 7).
INSITU_STORAGE_GB_MAX = 1.0
#: Data-size reduction observed in all configurations (Fig. 7).
STORAGE_REDUCTION_MIN = 0.995

#: Storage rack power: idle and full-load (Section V, "Power").
STORAGE_IDLE_W = 2_273.0
STORAGE_FULL_W = 2_302.0
STORAGE_PROPORTIONALITY = 0.013  # the quoted 1.3 % increase

#: Compute cluster power: idle and loaded (Section V, "Power").
COMPUTE_IDLE_W = 15_000.0
COMPUTE_LOADED_W = 44_000.0
COMPUTE_DYNAMIC_RANGE = 1.93  # the quoted 193 % increase

# ---------------------------------------------------------------- Section VI
#: Equation (5): the three training configurations (S_io GB, N_viz, seconds).
EQ5_SYSTEM = (
    (0.1, 60, 676.0),     # in-situ, every 72 h
    (0.6, 540, 1_261.0),  # in-situ, every 8 h
    (80.0, 180, 1_322.0),  # post-processing, every 24 h
)
#: Equation (5) solution (with the algebraically consistent α/β assignment:
#: α = s/GB, β = s/image; see DESIGN.md).
EQ5_T_SIM = 603.0
EQ5_ALPHA_S_PER_GB = 6.3
EQ5_BETA_S_PER_IMAGE = 1.2
#: Quoted model accuracy on the held-out configurations (Fig. 8).
MODEL_MAX_ERROR = 0.005

#: Output counts per cadence for the 6-month campaign.
N_OUTPUTS = {8.0: 540, 24.0: 180, 72.0: 60}

# --------------------------------------------------------------- Section VII
#: The what-if campaign length: 100 simulated years.
WHATIF_YEARS = 100.0
#: Reasonable per-user storage reservation assumed in Fig. 9.
WHATIF_STORAGE_BUDGET_GB = 2_000.0
#: Fig. 9: post-processing is forced to one output per ~8 days at that budget.
WHATIF_POST_FORCED_INTERVAL_DAYS = 8.0
#: Fig. 10 callouts: in-situ energy savings at 1 h / 12 h / 24 h cadences.
WHATIF_ENERGY_SAVINGS = {1.0: 0.672, 12.0: 0.49, 24.0: 0.38}
