"""The paper's three hypotheses as executable predicates.

Section II-C states them; Section V tests them; the summary of findings
scores them.  This module makes that loop a first-class API: given a
completed :class:`~repro.core.characterization.CharacterizationStudy`,
:func:`evaluate_hypotheses` returns a verdict (supported / refuted) with the
quantitative evidence for each:

* **H1** — in-situ reduces the *storage subsystem's* power.  (Refuted: the
  rack is ~1.3 % power-proportional, so the saving is noise.)
* **H2** — in-situ reduces *overall energy*.  (Supported: energy tracks the
  shorter execution time.)
* **H3** — in-situ *increases overall power* (harnesses trapped capacity).
  (Refuted: MPI busy-polling keeps post-processing's power up.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterization import CharacterizationStudy
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.errors import ConfigurationError

__all__ = ["HypothesisVerdict", "evaluate_hypotheses", "findings_summary"]

#: Effects smaller than this fraction are treated as "no change".
SIGNIFICANCE = 0.05


@dataclass(frozen=True)
class HypothesisVerdict:
    """Outcome of testing one hypothesis against measured data."""

    hypothesis: str
    statement: str
    supported: bool
    #: The measured effect size (sign follows the hypothesis's direction).
    effect: float
    evidence: str

    def summary(self) -> str:
        """One-line verdict."""
        verdict = "SUPPORTED" if self.supported else "REFUTED"
        return f"{self.hypothesis} [{verdict}] {self.statement} — {self.evidence}"

    def to_dict(self) -> dict:
        """The verdict as a JSON-safe dict (used by ``--json`` output)."""
        return {
            "hypothesis": self.hypothesis,
            "statement": self.statement,
            "supported": self.supported,
            "effect": self.effect,
            "evidence": self.evidence,
        }


def _mean_over_grid(study: CharacterizationStudy, fn) -> float:
    values = [fn(h) for h in study.metrics.sample_intervals()]
    if not values:
        raise ConfigurationError("the study has no measurements")
    return sum(values) / len(values)


def evaluate_hypotheses(study: CharacterizationStudy) -> list[HypothesisVerdict]:
    """Test H1-H3 on a completed study; returns the three verdicts in order."""
    metrics = study.metrics

    def storage_power_drop(hours: float) -> float:
        insitu = metrics.get(IN_SITU, hours).power_report
        post = metrics.get(POST_PROCESSING, hours).power_report
        if insitu is None or post is None:
            raise ConfigurationError("H1 needs metered runs (power reports missing)")
        return 1.0 - insitu.average_storage_power / post.average_storage_power

    h1_effect = _mean_over_grid(study, storage_power_drop)
    h1 = HypothesisVerdict(
        hypothesis="H1",
        statement="in-situ reduces the storage subsystem's power",
        supported=h1_effect > SIGNIFICANCE,
        effect=h1_effect,
        evidence=(
            f"mean storage-power reduction {100 * h1_effect:.2f}% "
            "(the rack's whole idle-to-full swing is ~1.3%)"
        ),
    )

    h2_effect = _mean_over_grid(study, metrics.energy_savings)
    h2 = HypothesisVerdict(
        hypothesis="H2",
        statement="in-situ reduces overall energy",
        supported=h2_effect > SIGNIFICANCE,
        effect=h2_effect,
        evidence=f"mean energy saving {100 * h2_effect:.0f}% across the grid",
    )

    h3_effect = _mean_over_grid(study, metrics.power_change)
    h3 = HypothesisVerdict(
        hypothesis="H3",
        statement="in-situ increases overall power (harnesses trapped capacity)",
        supported=h3_effect > SIGNIFICANCE,
        effect=h3_effect,
        evidence=f"mean total-power change {100 * h3_effect:+.1f}% (within noise)",
    )
    return [h1, h2, h3]


def findings_summary(study: CharacterizationStudy) -> str:
    """The Section V "Summary of Findings" box, regenerated from data."""
    metrics = study.metrics
    verdicts = {v.hypothesis: v for v in evaluate_hypotheses(study)}
    fastest = max(metrics.time_savings(h) for h in metrics.sample_intervals())
    storage = min(metrics.storage_savings(h) for h in metrics.sample_intervals())
    lines = [
        "Summary of findings",
        f"  Finding 1: in-situ lowers supercomputing time (up to "
        f"{100 * fastest:.0f}% here) despite running visualization too.",
        f"  Finding 2: in-situ does not lower storage/data-movement power "
        f"(H1 {'supported' if verdicts['H1'].supported else 'refuted'}: "
        f"{100 * verdicts['H1'].effect:+.2f}%).",
        f"  Finding 3: in-situ does not harness trapped capacity "
        f"(H3 {'supported' if verdicts['H3'].supported else 'refuted'}: "
        f"{100 * verdicts['H3'].effect:+.1f}%).",
        f"  Finding 4: in-situ yields large energy savings "
        f"(H2 {'supported' if verdicts['H2'].supported else 'refuted'}: "
        f"mean {100 * verdicts['H2'].effect:.0f}%).",
        f"  Finding 5: in-situ remains essential against limited storage "
        f"(>= {100 * storage:.1f}% data reduction at every cadence).",
    ]
    return "\n".join(lines)
