"""The analytical model of Section VI (Equations 1–7).

Symbols (the paper's Table II):

====================  =========================================================
``E``                 total energy of the pipeline, ``E = P · t``         (Eq 1)
``P``                 average power — constant across rates (Fig. 5)
``t``                 ``t = t_sim + t_io + t_viz``                        (Eq 2)
``t``                 ``t = t_sim + α·S_io + β·N_viz``                    (Eq 3)
``t``                 ``t = (iter_any/iter_ref)·t_sim.ref + α·S_io + β·N_viz``
                                                                          (Eq 4)
``α``                 seconds to read/write 1 GB (≈6.3 on the paper's rack)
``β``                 seconds to produce one image set (≈1.2)
``S_io.any``          ``S_io.ref · rate_any / rate_ref``                  (Eq 6)
``N_viz.any``         ``N_viz.ref · rate_any / rate_ref``                 (Eq 7)
====================  =========================================================

Note: the paper's printed "α=1.2, β=6.3" contradicts its own Eq. 5 system
and prose; solving the printed system gives α≈6.3 s/GB, β≈1.2 s/image, which
is the assignment used here (see DESIGN.md).

:class:`PerformanceModel` implements Eqs. 1–4; :class:`DataModel` implements
Eqs. 6–7 for one pipeline given a reference measurement;
:class:`PipelinePredictor` composes them to answer "what does this pipeline
cost at any rate and campaign length".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError, ModelError
from repro.units import bytes_to_gb, gb_to_bytes

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import Measurement

__all__ = ["PerformanceModel", "DataModel", "Prediction", "PipelinePredictor"]


@dataclass(frozen=True)
class PerformanceModel:
    """Equations (1)–(4): execution time and energy from (iters, S_io, N_viz)."""

    #: Simulation seconds of the *reference* campaign (603 in the paper).
    t_sim_ref: float
    #: Timesteps of the reference campaign (8,640 in the paper).
    iter_ref: int
    #: Seconds per GB moved to/from storage (≈6.3).
    alpha: float
    #: Seconds per image set produced (≈1.2).
    beta: float
    #: Average pipeline power in watts (constant across rates, per Fig. 5).
    power_watts: Optional[float] = None

    def __post_init__(self) -> None:
        if self.t_sim_ref < 0:
            raise ConfigurationError(f"negative t_sim_ref: {self.t_sim_ref}")
        if self.iter_ref < 1:
            raise ConfigurationError(f"iter_ref must be >= 1: {self.iter_ref}")
        if self.alpha < 0 or self.beta < 0:
            raise ConfigurationError(f"negative cost coefficient: α={self.alpha}, β={self.beta}")
        if self.power_watts is not None and self.power_watts <= 0:
            raise ConfigurationError(f"power must be positive: {self.power_watts}")

    def simulation_time(self, iterations: float) -> float:  # repro-unit: seconds
        """The first term of Eq. (4): ``(iter_any/iter_ref) · t_sim.ref``."""
        if iterations < 0:
            raise ModelError(f"negative iteration count: {iterations}")
        return iterations / self.iter_ref * self.t_sim_ref

    def execution_time(self, iterations: float, s_io_gb: float, n_viz: float) -> float:
        # repro-unit: seconds
        """Equation (4)."""
        if s_io_gb < 0 or n_viz < 0:
            raise ModelError(f"negative workload: S_io={s_io_gb}, N_viz={n_viz}")
        return self.simulation_time(iterations) + self.alpha * s_io_gb + self.beta * n_viz

    def energy(self, iterations: float, s_io_gb: float, n_viz: float) -> float:
        # repro-unit: joules
        """Equation (1): ``E = P · t`` in joules."""
        if self.power_watts is None:
            raise ModelError("energy() requires power_watts")
        return self.power_watts * self.execution_time(iterations, s_io_gb, n_viz)


@dataclass(frozen=True)
class DataModel:
    """Equations (6)–(7) for one pipeline, anchored at a reference point.

    A pipeline's output volume and image count both scale linearly with the
    sampling *rate* (outputs per unit simulated time) and with the campaign
    length (iteration count).
    """

    #: Reference sampling interval in simulated hours.
    interval_hours_ref: float
    #: Output volume of the reference campaign in GB.
    s_io_gb_ref: float
    #: Image sets produced by the reference campaign.
    n_viz_ref: float
    #: Timesteps of the reference campaign.
    iter_ref: int

    def __post_init__(self) -> None:
        if self.interval_hours_ref <= 0:
            raise ConfigurationError(
                f"reference interval must be positive: {self.interval_hours_ref}"
            )
        if self.s_io_gb_ref < 0 or self.n_viz_ref < 0:
            raise ConfigurationError("negative reference volumes")
        if self.iter_ref < 1:
            raise ConfigurationError(f"iter_ref must be >= 1: {self.iter_ref}")

    @classmethod
    def from_measurement(cls, measurement: "Measurement") -> "DataModel":
        """Anchor the data model at a measured run."""
        return cls(
            interval_hours_ref=measurement.sample_interval_hours,
            s_io_gb_ref=bytes_to_gb(measurement.storage_bytes),
            n_viz_ref=float(measurement.n_outputs),
            iter_ref=measurement.n_timesteps,
        )

    def _scale(self, interval_hours: float, iterations: float) -> float:
        if interval_hours <= 0:
            raise ModelError(f"sampling interval must be positive: {interval_hours}")
        if iterations < 0:
            raise ModelError(f"negative iteration count: {iterations}")
        rate_ratio = self.interval_hours_ref / interval_hours
        return rate_ratio * (iterations / self.iter_ref)

    def s_io_gb(self, interval_hours: float, iterations: Optional[float] = None) -> float:
        """Equation (6), additionally scaled by campaign length."""
        iters = self.iter_ref if iterations is None else iterations
        return self.s_io_gb_ref * self._scale(interval_hours, iters)

    def n_viz(self, interval_hours: float, iterations: Optional[float] = None) -> float:
        """Equation (7), additionally scaled by campaign length."""
        iters = self.iter_ref if iterations is None else iterations
        return self.n_viz_ref * self._scale(interval_hours, iters)


@dataclass(frozen=True)
class Prediction:
    """Model output for one (pipeline, rate, campaign) query."""

    pipeline: str
    interval_hours: float
    iterations: float
    execution_time: float
    s_io_gb: float
    n_viz: float
    energy: Optional[float] = None

    @property
    def storage_bytes(self) -> float:
        """Predicted committed storage in bytes."""
        return gb_to_bytes(self.s_io_gb)


@dataclass(frozen=True)
class PipelinePredictor:
    """A performance model bound to one pipeline's data model."""

    pipeline: str
    model: PerformanceModel
    data: DataModel

    def predict(
        self, interval_hours: float, iterations: Optional[float] = None
    ) -> Prediction:
        """Predict time/energy/storage at any rate and campaign length.

        "Using our model, one could estimate the execution time, energy, and
        storage for any sampling rate and timesteps with data collected from
        one short run of the simulation." (Section VI)
        """
        iters = float(self.model.iter_ref if iterations is None else iterations)
        s = self.data.s_io_gb(interval_hours, iters)
        n = self.data.n_viz(interval_hours, iters)
        t = self.model.execution_time(iters, s, n)
        e = (
            self.model.energy(iters, s, n)
            if self.model.power_watts is not None
            else None
        )
        return Prediction(
            pipeline=self.pipeline,
            interval_hours=interval_hours,
            iterations=iters,
            execution_time=t,
            s_io_gb=s,
            n_viz=n,
            energy=e,
        )
