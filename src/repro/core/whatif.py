"""What-if analysis (Section VII, Figures 9 and 10).

Given calibrated :class:`~repro.core.model.PipelinePredictor` objects for the
two pipelines, :class:`WhatIfAnalyzer` answers the paper's questions:

* *Storage vs. sampling rate* (Fig. 9): how much storage does a 100-year
  campaign need at each cadence, and what is the finest cadence that fits a
  storage budget (the paper's "2 TB budget forces post-processing to once
  every 8 days, while in-situ runs once per day or better")?
* *Energy vs. sampling rate* (Fig. 10): what energy does each pipeline need
  at each cadence, and how much does in-situ save (67.2 % at hourly
  sampling, 49 % at 12-hourly, 38 % at daily)?

The sweep family (:meth:`WhatIfAnalyzer.sweep`, :meth:`~WhatIfAnalyzer.
storage_vs_rate`, :meth:`~WhatIfAnalyzer.energy_vs_rate`,
:meth:`~WhatIfAnalyzer.failure_aware_sweep`) is keyword-only and returns
typed, sequence-like results whose ``to_dict()`` carries the same
``schema_version`` as the obs manifests.  Rows stay tuple-unpackable
(``for h, insitu, post in ...``) so paper-style printing is unchanged;
positional calls still work through a ``DeprecationWarning`` shim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import NamedTuple, Optional, Sequence

from repro.core.model import PipelinePredictor, Prediction
from repro.errors import ConfigurationError, ModelError
from repro.exec.api import warn_legacy
from repro.faults.model import FailureModel
from repro.obs.manifest import SCHEMA_VERSION
from repro.paper import TIMESTEP_SECONDS
from repro.units import HOUR

__all__ = [
    "EnergyRateRow",
    "FailureSweepResult",
    "FailureSweepRow",
    "RateSweepResult",
    "StorageRateRow",
    "SweepResult",
    "SweepRow",
    "WhatIfAnalyzer",
]


@dataclass(frozen=True)
class SweepRow:
    """One cadence in a sweep: predictions for both pipelines."""

    interval_hours: float
    insitu: Prediction
    post: Prediction

    def storage_savings(self) -> float:
        """Fractional storage reduction of in-situ at this cadence."""
        if self.post.s_io_gb == 0:
            raise ModelError("post-processing storage is zero; no baseline")
        return 1.0 - self.insitu.s_io_gb / self.post.s_io_gb

    def energy_savings(self) -> float:
        """Fractional energy reduction of in-situ at this cadence."""
        if self.post.energy is None or self.insitu.energy is None:
            raise ModelError("predictors lack power; energy unavailable")
        if self.post.energy == 0:
            raise ModelError("post-processing energy is zero; no baseline")
        return 1.0 - self.insitu.energy / self.post.energy

    def time_savings(self) -> float:
        """Fractional execution-time reduction of in-situ at this cadence."""
        if self.post.execution_time == 0:
            raise ModelError("post-processing time is zero; no baseline")
        return 1.0 - self.insitu.execution_time / self.post.execution_time

    def to_dict(self) -> dict:
        """JSON-safe representation (shared schema with obs manifests)."""
        return {
            "interval_hours": self.interval_hours,
            "insitu": asdict(self.insitu),
            "post": asdict(self.post),
        }


@dataclass(frozen=True)
class FailureSweepRow:
    """One cadence under failures: fault-free vs expected (Daly) outcomes."""

    interval_hours: float
    checkpoint_interval_seconds: float
    insitu: Prediction
    post: Prediction
    insitu_expected_seconds: float
    post_expected_seconds: float
    insitu_expected_joules: Optional[float]
    post_expected_joules: Optional[float]

    def insitu_overhead_ratio(self) -> float:
        """Fractional runtime inflation failures impose on in-situ."""
        if self.insitu.execution_time == 0:
            raise ModelError("in-situ time is zero; no baseline")
        return self.insitu_expected_seconds / self.insitu.execution_time - 1.0

    def post_overhead_ratio(self) -> float:
        """Fractional runtime inflation failures impose on post-processing."""
        if self.post.execution_time == 0:
            raise ModelError("post-processing time is zero; no baseline")
        return self.post_expected_seconds / self.post.execution_time - 1.0

    def energy_savings(self) -> float:
        """In-situ energy savings fraction *including* failure overheads."""
        if self.insitu_expected_joules is None or self.post_expected_joules is None:
            raise ModelError("predictors lack power; energy unavailable")
        if self.post_expected_joules == 0:
            raise ModelError("post-processing energy is zero; no baseline")
        return 1.0 - self.insitu_expected_joules / self.post_expected_joules

    def to_dict(self) -> dict:
        """JSON-safe representation (shared schema with obs manifests)."""
        return {
            "interval_hours": self.interval_hours,
            "checkpoint_interval_seconds": self.checkpoint_interval_seconds,
            "insitu": asdict(self.insitu),
            "post": asdict(self.post),
            "insitu_expected_seconds": self.insitu_expected_seconds,
            "post_expected_seconds": self.post_expected_seconds,
            "insitu_expected_joules": self.insitu_expected_joules,
            "post_expected_joules": self.post_expected_joules,
        }


class StorageRateRow(NamedTuple):
    """One Fig. 9 row; unpacks like the legacy ``(h, insitu, post)`` tuple."""

    interval_hours: float
    insitu_gb: float
    post_gb: float


class EnergyRateRow(NamedTuple):
    """One Fig. 10 row; unpacks like the legacy ``(h, insitu, post)`` tuple."""

    interval_hours: float
    insitu_joules: float
    post_joules: float


class _SweepSequence:
    """Sequence protocol shared by the typed sweep results."""

    rows: tuple = ()

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index):
        return self.rows[index]


@dataclass(frozen=True)
class SweepResult(_SweepSequence):
    """Typed result of :meth:`WhatIfAnalyzer.sweep`: a row per cadence."""

    rows: tuple = ()
    duration_seconds: Optional[float] = None

    def to_dict(self) -> dict:
        """Versioned JSON-safe schema (shared with the obs manifests)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "sweep",
            "duration_seconds": self.duration_seconds,
            "rows": [row.to_dict() for row in self.rows],
        }


@dataclass(frozen=True)
class RateSweepResult(_SweepSequence):
    """Typed Fig. 9 / Fig. 10 result: named-tuple rows, versioned dict."""

    kind: str = ""
    columns: tuple = ()
    rows: tuple = ()
    duration_seconds: float = 0.0

    def to_dict(self) -> dict:
        """Versioned JSON-safe schema (shared with the obs manifests)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "columns": list(self.columns),
            "duration_seconds": self.duration_seconds,
            "rows": [list(row) for row in self.rows],
        }


@dataclass(frozen=True)
class FailureSweepResult(_SweepSequence):
    """Typed result of :meth:`WhatIfAnalyzer.failure_aware_sweep`."""

    rows: tuple = ()
    duration_seconds: float = 0.0
    mtbf_hours: float = 0.0

    def to_dict(self) -> dict:
        """Versioned JSON-safe schema (shared with the obs manifests)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "failure-aware-sweep",
            "duration_seconds": self.duration_seconds,
            "mtbf_hours": self.mtbf_hours,
            "rows": [row.to_dict() for row in self.rows],
        }


class WhatIfAnalyzer:
    """Sweeps and budget inversions over the calibrated models."""

    def __init__(
        self,
        insitu: PipelinePredictor,
        post: PipelinePredictor,
        timestep_seconds: float = TIMESTEP_SECONDS,
    ) -> None:
        if timestep_seconds <= 0:
            raise ConfigurationError(f"timestep must be positive: {timestep_seconds}")
        self.insitu = insitu
        self.post = post
        self.timestep_seconds = float(timestep_seconds)

    def iterations_for(self, duration_seconds: float) -> float:  # repro-unit: count
        """Timesteps of a campaign of ``duration_seconds`` simulated time."""
        if duration_seconds <= 0:
            raise ModelError(f"duration must be positive: {duration_seconds}")
        return duration_seconds / self.timestep_seconds

    # ----------------------------------------------------------------- sweeps

    @staticmethod
    def _legacy_positional(
        api: str, args: tuple, names: Sequence[str], provided: dict
    ) -> dict:
        """Map a legacy positional call onto keywords, warning once."""
        if not args:
            return provided
        if len(args) > len(names):
            raise TypeError(
                f"{api} takes at most {len(names)} positional argument(s), "
                f"got {len(args)}"
            )
        warn_legacy(
            f"WhatIfAnalyzer.{api} with positional arguments",
            f"WhatIfAnalyzer.{api}(" + ", ".join(f"{n}=..." for n in names[: len(args)]) + ")",
        )
        merged = dict(provided)
        for name, value in zip(names, args):
            if merged.get(name) is not None:
                raise TypeError(f"{api} got multiple values for argument {name!r}")
            merged[name] = value
        return merged

    def sweep(
        self,
        *args: object,
        intervals_hours: Optional[Sequence[float]] = None,
        duration_seconds: Optional[float] = None,
    ) -> SweepResult:
        """Predict both pipelines at each cadence for a campaign length.

        Keyword-only; positional calls are deprecated (shimmed with a
        warning).  Returns a :class:`SweepResult` — iterate it like the old
        ``list[SweepRow]``, or serialize with ``to_dict()``.
        """
        params = self._legacy_positional(
            "sweep",
            args,
            ("intervals_hours", "duration_seconds"),
            {"intervals_hours": intervals_hours, "duration_seconds": duration_seconds},
        )
        intervals_hours = params["intervals_hours"]
        duration_seconds = params["duration_seconds"]
        if intervals_hours is None:
            raise TypeError("sweep() missing required keyword argument 'intervals_hours'")
        iters = (
            None if duration_seconds is None else self.iterations_for(duration_seconds)
        )
        rows = []
        for h in intervals_hours:
            rows.append(
                SweepRow(
                    interval_hours=h,
                    insitu=self.insitu.predict(h, iters),
                    post=self.post.predict(h, iters),
                )
            )
        return SweepResult(rows=tuple(rows), duration_seconds=duration_seconds)

    def storage_vs_rate(
        self,
        *args: object,
        intervals_hours: Optional[Sequence[float]] = None,
        duration_seconds: Optional[float] = None,
    ) -> RateSweepResult:
        """Fig. 9 rows: ``(interval_hours, insitu_gb, post_gb)``."""
        params = self._legacy_positional(
            "storage_vs_rate",
            args,
            ("intervals_hours", "duration_seconds"),
            {"intervals_hours": intervals_hours, "duration_seconds": duration_seconds},
        )
        if params["intervals_hours"] is None or params["duration_seconds"] is None:
            raise TypeError(
                "storage_vs_rate() requires keyword arguments "
                "'intervals_hours' and 'duration_seconds'"
            )
        rows = tuple(
            StorageRateRow(r.interval_hours, r.insitu.s_io_gb, r.post.s_io_gb)
            for r in self.sweep(
                intervals_hours=params["intervals_hours"],
                duration_seconds=params["duration_seconds"],
            )
        )
        return RateSweepResult(
            kind="storage-vs-rate",
            columns=("interval_hours", "insitu_gb", "post_gb"),
            rows=rows,
            duration_seconds=float(params["duration_seconds"]),
        )

    def energy_vs_rate(
        self,
        *args: object,
        intervals_hours: Optional[Sequence[float]] = None,
        duration_seconds: Optional[float] = None,
    ) -> RateSweepResult:
        """Fig. 10 rows: ``(interval_hours, insitu_joules, post_joules)``."""
        params = self._legacy_positional(
            "energy_vs_rate",
            args,
            ("intervals_hours", "duration_seconds"),
            {"intervals_hours": intervals_hours, "duration_seconds": duration_seconds},
        )
        if params["intervals_hours"] is None or params["duration_seconds"] is None:
            raise TypeError(
                "energy_vs_rate() requires keyword arguments "
                "'intervals_hours' and 'duration_seconds'"
            )
        rows = []
        for r in self.sweep(
            intervals_hours=params["intervals_hours"],
            duration_seconds=params["duration_seconds"],
        ):
            if r.insitu.energy is None or r.post.energy is None:
                raise ModelError("predictors lack power; energy sweep unavailable")
            rows.append(EnergyRateRow(r.interval_hours, r.insitu.energy, r.post.energy))
        return RateSweepResult(
            kind="energy-vs-rate",
            columns=("interval_hours", "insitu_joules", "post_joules"),
            rows=tuple(rows),
            duration_seconds=float(params["duration_seconds"]),
        )

    def energy_savings(self, interval_hours: float, duration_seconds: float) -> float:
        """In-situ energy savings fraction at one cadence (Fig. 10 callouts)."""
        (row,) = self.sweep(
            intervals_hours=[interval_hours], duration_seconds=duration_seconds
        )
        return row.energy_savings()

    def failure_aware_sweep(
        self,
        *args: object,
        intervals_hours: Optional[Sequence[float]] = None,
        duration_seconds: Optional[float] = None,
        mtbf_hours: Optional[float] = None,
        checkpoint_write_seconds: Optional[float] = None,
        restart_seconds: float = 30.0,
        checkpoint_interval_seconds: Optional[float] = None,
    ) -> FailureSweepResult:
        """The Fig. 9/10 sweeps with failures folded in (Eq. 4 + Daly).

        Each cadence's fault-free prediction becomes an *expected* runtime
        and energy under a node MTBF of ``mtbf_hours``, a checkpoint that
        costs ``checkpoint_write_seconds`` to write and ``restart_seconds``
        to recover from.  The checkpoint interval defaults to Daly's
        optimum ``sqrt(2 * delta * MTBF)`` per cadence.
        """
        params = self._legacy_positional(
            "failure_aware_sweep",
            args,
            (
                "intervals_hours",
                "duration_seconds",
                "mtbf_hours",
                "checkpoint_write_seconds",
                "restart_seconds",
                "checkpoint_interval_seconds",
            ),
            {
                "intervals_hours": intervals_hours,
                "duration_seconds": duration_seconds,
                "mtbf_hours": mtbf_hours,
                "checkpoint_write_seconds": checkpoint_write_seconds,
                "restart_seconds": None if args else restart_seconds,
                "checkpoint_interval_seconds": checkpoint_interval_seconds,
            },
        )
        intervals_hours = params["intervals_hours"]
        duration_seconds = params["duration_seconds"]
        mtbf_hours = params["mtbf_hours"]
        checkpoint_write_seconds = params["checkpoint_write_seconds"]
        restart_seconds = (
            restart_seconds
            if params["restart_seconds"] is None
            else params["restart_seconds"]
        )
        checkpoint_interval_seconds = params["checkpoint_interval_seconds"]
        missing = [
            name
            for name in (
                "intervals_hours",
                "duration_seconds",
                "mtbf_hours",
                "checkpoint_write_seconds",
            )
            if params[name] is None
        ]
        if missing:
            raise TypeError(
                "failure_aware_sweep() missing required keyword "
                f"argument(s): {', '.join(missing)}"
            )
        if mtbf_hours <= 0:
            raise ModelError(f"MTBF must be positive: {mtbf_hours}")
        model = FailureModel(
            mtbf_seconds=mtbf_hours * HOUR,
            checkpoint_write_seconds=checkpoint_write_seconds,
            restart_seconds=restart_seconds,
        )
        if checkpoint_interval_seconds is not None:
            tau = float(checkpoint_interval_seconds)
        else:
            tau = model.optimal_interval()
        rows = []
        for base in self.sweep(
            intervals_hours=intervals_hours, duration_seconds=duration_seconds
        ):
            insitu_t = model.expected_time(base.insitu.execution_time, tau)
            post_t = model.expected_time(base.post.execution_time, tau)
            insitu_j = None
            post_j = None
            if base.insitu.energy is not None and base.insitu.execution_time > 0:
                power = base.insitu.energy / base.insitu.execution_time
                insitu_j = model.expected_energy(
                    base.insitu.execution_time, tau, power
                )
            if base.post.energy is not None and base.post.execution_time > 0:
                power = base.post.energy / base.post.execution_time
                post_j = model.expected_energy(base.post.execution_time, tau, power)
            rows.append(
                FailureSweepRow(
                    interval_hours=base.interval_hours,
                    checkpoint_interval_seconds=tau,
                    insitu=base.insitu,
                    post=base.post,
                    insitu_expected_seconds=insitu_t,
                    post_expected_seconds=post_t,
                    insitu_expected_joules=insitu_j,
                    post_expected_joules=post_j,
                )
            )
        return FailureSweepResult(
            rows=tuple(rows),
            duration_seconds=float(duration_seconds),
            mtbf_hours=float(mtbf_hours),
        )

    # ------------------------------------------------------------- inversions

    def finest_interval_for_storage(
        self, pipeline: str, budget_gb: float, duration_seconds: float
    ) -> float:
        """Smallest sampling interval (hours) whose storage fits ``budget_gb``.

        Inverts Eq. (6): storage scales as ``1/interval``, so the finest
        feasible cadence is where predicted storage equals the budget.
        """
        if budget_gb <= 0:
            raise ModelError(f"storage budget must be positive: {budget_gb}")
        predictor = self._predictor(pipeline)
        iters = self.iterations_for(duration_seconds)
        # storage(h) = s_ref * (h_ref / h) * iter_scale  =>  h = h_ref * s(h_ref) / budget
        ref_h = predictor.data.interval_hours_ref
        s_at_ref = predictor.data.s_io_gb(ref_h, iters)
        if s_at_ref == 0:
            # A pipeline that writes nothing fits any budget at any cadence.
            return self.timestep_seconds / HOUR
        return max(ref_h * s_at_ref / budget_gb, self.timestep_seconds / HOUR)

    def finest_interval_for_energy(
        self, pipeline: str, budget_joules: float, duration_seconds: float
    ) -> float:
        """Smallest sampling interval (hours) whose energy fits the budget.

        Inverts Eqs. (1)+(4): ``E(h) = P·(t_sim + c/h)`` with
        ``c = α·S_ref·h_ref·scale + β·N_ref·h_ref·scale``.
        """
        if budget_joules <= 0:
            raise ModelError(f"energy budget must be positive: {budget_joules}")
        predictor = self._predictor(pipeline)
        model = predictor.model
        if model.power_watts is None:
            raise ModelError("predictor lacks power; energy inversion unavailable")
        iters = self.iterations_for(duration_seconds)
        floor_j = model.power_watts * model.simulation_time(iters)
        if budget_joules <= floor_j:
            raise ModelError(
                f"energy budget {budget_joules:.3e} J below the simulation floor "
                f"{floor_j:.3e} J — no cadence can satisfy it"
            )
        ref_h = predictor.data.interval_hours_ref
        variable_at_ref = (
            model.alpha * predictor.data.s_io_gb(ref_h, iters)
            + model.beta * predictor.data.n_viz(ref_h, iters)
        )
        if variable_at_ref == 0:
            return self.timestep_seconds / HOUR
        budget_var_s = budget_joules / model.power_watts - model.simulation_time(iters)
        return max(
            ref_h * variable_at_ref / budget_var_s, self.timestep_seconds / HOUR
        )

    def _predictor(self, pipeline: str) -> PipelinePredictor:
        for p in (self.insitu, self.post):
            if p.pipeline == pipeline:
                return p
        raise ConfigurationError(
            f"unknown pipeline {pipeline!r}; have {self.insitu.pipeline!r} "
            f"and {self.post.pipeline!r}"
        )
