"""Per-run measurements and cross-run comparison.

:class:`Measurement` is the record one pipeline run produces — the four
quantities of the paper's Section V (execution time, average power, energy,
storage) plus phase breakdowns and artifact counts.  :class:`MetricSet`
collects measurements across the experiment grid and renders the paper's
comparisons ("the in-situ pipeline runs 51 % faster, consumes 50 % less
energy, and occupies 99.5 % less disk space").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.power.report import PowerReport
from repro.units import (
    bytes_to_gb,
    format_bytes,
    format_energy,
    format_power,
    format_seconds,
)

__all__ = ["Measurement", "MetricSet", "PhaseTimeline"]

#: Canonical pipeline names.
IN_SITU = "in-situ"
POST_PROCESSING = "post-processing"


@dataclass
class PhaseTimeline:
    """Ordered list of ``(phase, t0, t1)`` records for one run.

    Each :meth:`add` also feeds the telemetry layer (a ``phase`` record in
    the event stream plus the ``repro_pipeline_phase_seconds`` histogram)
    whenever a session is active; ``domain`` says which clock the caller's
    timestamps come from (simulated campaign time vs real wall time).
    """

    records: list[tuple[str, float, float]] = field(default_factory=list)
    #: Clock domain of the timestamps (``obs.SIM`` or ``obs.WALL``).
    domain: str = obs.SIM

    def add(self, phase: str, t0: float, t1: float) -> None:
        # repro-unit: t0=seconds, t1=seconds
        """Record that ``phase`` ran over ``[t0, t1]``."""
        if t1 < t0:
            raise ConfigurationError(f"phase {phase!r} ends before it starts: {t0}..{t1}")
        self.records.append((phase, t0, t1))
        obs.phase(phase, t0, t1, domain=self.domain)

    def total(self, phase: str) -> float:  # repro-unit: seconds
        """Total seconds spent in ``phase`` (across all its segments)."""
        return sum(t1 - t0 for p, t0, t1 in self.records if p == phase)

    def phases(self) -> list[str]:
        """Distinct phase names in first-appearance order."""
        seen: list[str] = []
        for p, _, _ in self.records:
            if p not in seen:
                seen.append(p)
        return seen

    def by_phase(self) -> dict[str, float]:
        """``{phase: total_seconds}`` over the run."""
        return {p: self.total(p) for p in self.phases()}


@dataclass
class Measurement:
    """Everything measured about one pipeline run."""

    pipeline: str
    sample_interval_hours: float
    execution_time: float
    n_timesteps: int
    #: Bytes committed to permanent storage by this run.
    storage_bytes: float
    #: Output *samples* written (image sets for in-situ, raw files for post).
    n_outputs: int
    #: Individual images produced (0 until the viz stage has run).
    n_images: int = 0
    timeline: PhaseTimeline = field(default_factory=PhaseTimeline)
    #: Average total power in watts (None when the platform cannot meter).
    average_power: Optional[float] = None
    #: Total energy in joules (None when the platform cannot meter).
    energy: Optional[float] = None
    power_report: Optional[PowerReport] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.execution_time < 0:
            raise ConfigurationError(f"negative execution time: {self.execution_time}")
        if self.sample_interval_hours <= 0:
            raise ConfigurationError(
                f"sample interval must be positive: {self.sample_interval_hours}"
            )
        if self.storage_bytes < 0:
            raise ConfigurationError(f"negative storage: {self.storage_bytes}")

    @property
    def simulation_time(self) -> float:
        """Seconds in the simulation phase."""
        return self.timeline.total("simulation")

    @property
    def io_time(self) -> float:
        """Seconds in I/O phases (raw writes + image writes + reads)."""
        return self.timeline.total("io")

    @property
    def viz_time(self) -> float:
        """Seconds in visualization phases."""
        return self.timeline.total("viz")

    @property
    def storage_gb(self) -> float:
        """Committed storage in decimal gigabytes."""
        return bytes_to_gb(self.storage_bytes)

    def to_dict(self) -> dict:
        """The measurement as a JSON-safe dict (used by ``--json`` output)."""
        return {
            "pipeline": self.pipeline,
            "sample_interval_hours": self.sample_interval_hours,
            "execution_time_seconds": self.execution_time,
            "n_timesteps": self.n_timesteps,
            "storage_bytes": self.storage_bytes,
            "n_outputs": self.n_outputs,
            "n_images": self.n_images,
            "phases_seconds": self.timeline.by_phase(),
            "average_power_watts": self.average_power,
            "energy_joules": self.energy,
            "label": self.label,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        power = format_power(self.average_power) if self.average_power is not None else "n/a"
        energy = format_energy(self.energy) if self.energy is not None else "n/a"
        return (
            f"{self.pipeline:16s} @ {self.sample_interval_hours:5.1f} h: "
            f"time {format_seconds(self.execution_time):>10s}  power {power:>9s}  "
            f"energy {energy:>10s}  storage {format_bytes(self.storage_bytes):>10s}  "
            f"images {self.n_images}"
        )


class MetricSet:
    """A queryable collection of measurements (one experiment grid)."""

    def __init__(self, measurements: Iterable[Measurement] = ()) -> None:
        self._measurements: list[Measurement] = list(measurements)

    def add(self, m: Measurement) -> None:
        """Append a measurement."""
        self._measurements.append(m)

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self._measurements)

    def get(self, pipeline: str, sample_interval_hours: float) -> Measurement:
        """The unique measurement for a (pipeline, rate) cell."""
        hits = [
            m
            for m in self._measurements
            if m.pipeline == pipeline
            and abs(m.sample_interval_hours - sample_interval_hours) < 1e-9
        ]
        if not hits:
            raise ConfigurationError(
                f"no measurement for ({pipeline!r}, {sample_interval_hours} h)"
            )
        if len(hits) > 1:
            raise ConfigurationError(
                f"{len(hits)} measurements for ({pipeline!r}, {sample_interval_hours} h)"
            )
        return hits[0]

    def pipelines(self) -> list[str]:
        """Distinct pipeline names present."""
        return sorted({m.pipeline for m in self._measurements})

    def sample_intervals(self) -> list[float]:
        """Distinct sampling intervals present, ascending."""
        return sorted({m.sample_interval_hours for m in self._measurements})

    # ------------------------------------------------------------ comparisons

    def _relative_drop(self, attr: str, interval: float) -> float:
        post = getattr(self.get(POST_PROCESSING, interval), attr)
        insitu = getattr(self.get(IN_SITU, interval), attr)
        if post is None or insitu is None:
            raise ConfigurationError(f"{attr} unavailable for comparison")
        if post == 0:
            raise ConfigurationError(f"zero baseline for {attr}")
        return 1.0 - insitu / post

    def time_savings(self, interval: float) -> float:
        """Fractional execution-time reduction of in-situ vs post-processing."""
        return self._relative_drop("execution_time", interval)

    def energy_savings(self, interval: float) -> float:
        """Fractional energy reduction of in-situ vs post-processing."""
        return self._relative_drop("energy", interval)

    def storage_savings(self, interval: float) -> float:
        """Fractional storage reduction of in-situ vs post-processing."""
        return self._relative_drop("storage_bytes", interval)

    def power_change(self, interval: float) -> float:
        """Fractional power change (≈0 is the paper's Finding 3)."""
        return -self._relative_drop("average_power", interval)

    # -------------------------------------------------------------- rendering

    def table(self) -> str:
        """Multi-line table across the whole grid, grouped by rate."""
        lines = []
        for interval in self.sample_intervals():
            for pipeline in self.pipelines():
                try:
                    lines.append(self.get(pipeline, interval).summary())
                except ConfigurationError:
                    continue
        return "\n".join(lines)
