"""The Section IV/V characterization methodology, end to end.

:func:`run_characterization` executes the paper's full experiment grid —
both pipelines at the 8/24/72-hour cadences on an instrumented (simulated)
platform — and wraps the results in a :class:`CharacterizationStudy`, which
can then:

* render the Section V comparison tables (time / power / energy / storage);
* calibrate the analytical model from the paper's three training
  configurations and validate it on the held-out three (Fig. 8);
* build the calibrated :class:`~repro.core.whatif.WhatIfAnalyzer` that
  drives the Fig. 9 / Fig. 10 analyses;
* benchmark the storage cluster's power proportionality (the 2273→2302 W
  measurement of Section V).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.calibration import (
    CalibrationPoint,
    CalibrationResult,
    calibrate_exact,
    points_from_measurements,
)
from repro.core.metrics import IN_SITU, POST_PROCESSING, Measurement, MetricSet
from repro.core.model import DataModel, PipelinePredictor
from repro.core.whatif import WhatIfAnalyzer
from repro.errors import ConfigurationError, SweepError
from repro.exec.api import RunRequest
from repro.exec.engine import ExecutionEngine
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.storage.lustre import StorageCluster

__all__ = ["CharacterizationStudy", "run_characterization", "storage_power_sweep"]

#: The paper's training configurations for Eq. (5): (pipeline, interval).
TRAINING_CONFIGS: tuple[tuple[str, float], ...] = (
    (IN_SITU, 8.0),
    (IN_SITU, 72.0),
    (POST_PROCESSING, 24.0),
)


class CharacterizationStudy:
    """Results of one full experiment grid plus derived models."""

    def __init__(self, metrics: MetricSet, spec: PipelineSpec) -> None:
        self.metrics = metrics
        self.spec = spec

    # ----------------------------------------------------------- Section V

    def table(self) -> str:
        """The Section V comparison table across the grid."""
        return self.metrics.table()

    def to_dict(self) -> dict:
        """The grid and its cross-pipeline comparisons as a JSON-safe dict."""
        comparisons = {}
        for h in self.metrics.sample_intervals():
            comparisons[f"{h:g}"] = {
                "time_savings": self.metrics.time_savings(h),
                "energy_savings": self.metrics.energy_savings(h),
                "storage_savings": self.metrics.storage_savings(h),
                "power_change": self.metrics.power_change(h),
            }
        return {
            "measurements": [m.to_dict() for m in self.metrics],
            "comparisons": comparisons,
        }

    def findings(self) -> str:
        """Narrative summary mirroring the paper's Findings 1–5."""
        lines = []
        for h in self.metrics.sample_intervals():
            lines.append(
                f"every {h:g} h: in-situ is {100 * self.metrics.time_savings(h):.0f}% "
                f"faster, saves {100 * self.metrics.energy_savings(h):.0f}% energy and "
                f"{100 * self.metrics.storage_savings(h):.1f}% storage; power changes "
                f"by {100 * self.metrics.power_change(h):+.1f}%"
            )
        return "\n".join(lines)

    # ---------------------------------------------------------- Section VI

    def training_points(self) -> list[CalibrationPoint]:
        """The three Eq. (5) configurations as calibration points."""
        return points_from_measurements(
            self.metrics.get(p, h) for p, h in TRAINING_CONFIGS
        )

    def holdout_points(self) -> list[CalibrationPoint]:
        """The remaining grid cells (Fig. 8's evaluation points)."""
        training = set(TRAINING_CONFIGS)
        held = [
            m
            for m in self.metrics
            if (m.pipeline, m.sample_interval_hours) not in training
        ]
        return points_from_measurements(held, iter_ref=self.spec.ocean.n_timesteps)

    def average_power(self) -> float:
        """Grid-mean total power (constant across cells, per Fig. 5)."""
        powers = [m.average_power for m in self.metrics if m.average_power is not None]
        if not powers:
            raise ConfigurationError("no metered measurements in the study")
        return float(np.mean(powers))

    def calibrate(self) -> CalibrationResult:
        """Fit Eq. (5) exactly from the three training configurations."""
        return calibrate_exact(
            self.training_points(),
            iter_ref=self.spec.ocean.n_timesteps,
            power_watts=self.average_power(),
        )

    def validate(self) -> list[tuple[CalibrationPoint, float, float]]:
        """Fig. 8: evaluate the calibrated model on the held-out cells."""
        return self.calibrate().validate(self.holdout_points())

    # --------------------------------------------------------- Section VII

    def analyzer(self, reference_interval_hours: float = 24.0) -> WhatIfAnalyzer:
        """The calibrated what-if analyzer for Figs. 9 and 10."""
        result = self.calibrate()
        insitu = PipelinePredictor(
            pipeline=IN_SITU,
            model=result.model,
            data=DataModel.from_measurement(
                self.metrics.get(IN_SITU, reference_interval_hours)
            ),
        )
        post = PipelinePredictor(
            pipeline=POST_PROCESSING,
            model=result.model,
            data=DataModel.from_measurement(
                self.metrics.get(POST_PROCESSING, reference_interval_hours)
            ),
        )
        return WhatIfAnalyzer(
            insitu, post, timestep_seconds=self.spec.ocean.timestep_seconds
        )


def run_characterization(
    platform_factory: Optional[Callable[[], SimulatedPlatform]] = None,
    intervals_hours: Sequence[float] = (8.0, 24.0, 72.0),
    spec: Optional[PipelineSpec] = None,
    engine: Optional["ExecutionEngine"] = None,
    *,
    pipelines: Optional[Sequence] = None,
) -> CharacterizationStudy:
    """Run the full experiment grid and return the study.

    Each (pipeline, cadence) cell runs on a *fresh* platform — the paper's
    dedicated-machine discipline ("we ran our test application on the entire
    cluster so that we are measuring only the power consumed by our
    application").  The grid goes through the execution engine, so passing
    an ``engine`` with workers and/or a cache fans the cells out in parallel
    and memoizes them; the default engine runs them inline, bit-identical
    to the historical serial loop.  ``platform_factory`` (custom clusters,
    instrumented storage) forces the inline path: bespoke platform objects
    cannot cross the engine's process/cache boundary.

    ``pipelines`` (keyword-only) widens or reorders the grid: a sequence of
    :class:`~repro.pipelines.base.Pipeline` instances replacing the default
    in-situ / post-processing pair (e.g. adding
    :class:`~repro.pipelines.intransit.InTransitPipeline`).  The default
    ``None`` keeps the historical request list byte-for-byte.
    """
    if not intervals_hours:
        raise ConfigurationError("need at least one sampling interval")
    base = spec if spec is not None else PipelineSpec()
    metrics = MetricSet()
    if platform_factory is not None:
        for hours in intervals_hours:
            cell_pipelines = (
                (InSituPipeline(), PostProcessingPipeline())
                if pipelines is None
                else pipelines
            )
            for pipeline in cell_pipelines:
                cell_spec = base.with_sampling(SamplingPolicy(hours))
                result = pipeline.execute(
                    RunRequest(spec=cell_spec), platform=platform_factory()
                )
                metrics.add(result.measurement)
    else:
        runner = engine if engine is not None else ExecutionEngine()
        if pipelines is None:
            requests = [
                RunRequest(
                    pipeline=name, spec=base.with_sampling(SamplingPolicy(hours))
                )
                for hours in intervals_hours
                for name in (InSituPipeline.name, PostProcessingPipeline.name)
            ]
        else:
            requests = [
                RunRequest(
                    pipeline=pipeline.name,
                    pipeline_args=pipeline.request_args(),
                    spec=base.with_sampling(SamplingPolicy(hours)),
                )
                for hours in intervals_hours
                for pipeline in pipelines
            ]
        results = runner.map(requests)
        failed = [r.failure for r in results if r.failure is not None]
        if failed:
            # The study aggregates every cell of the grid; a missing cell
            # would silently skew Fig. 6/7 tables, so surface the failures
            # instead of averaging around the hole.
            raise SweepError(
                f"characterization grid lost {len(failed)} of "
                f"{len(results)} cells to task failures",
                failures=failed,
                results=results,
            )
        for result in results:
            metrics.add(result.measurement)
    return CharacterizationStudy(metrics, base)


def storage_power_sweep(
    storage: Optional[StorageCluster] = None,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> list[tuple[float, float]]:
    """Benchmark storage power proportionality (Section V).

    Returns ``(throughput_bytes_per_s, watts)`` pairs from idle to full load
    — the paper's 2273 W → 2302 W measurement.
    """
    from repro.events.engine import Simulator

    cluster = storage if storage is not None else StorageCluster(Simulator())
    model = cluster.power_model
    rows = []
    for f in fractions:
        if not 0.0 <= f <= 1.0:
            raise ConfigurationError(f"load fraction outside [0, 1]: {f}")
        throughput = f * model.rated_bandwidth
        rows.append((throughput, model.power(throughput)))
    return rows
