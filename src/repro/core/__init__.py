"""The paper's primary contribution: characterization + modeling.

* :mod:`repro.core.metrics` — per-run measurements and comparison tables
  (execution time, power, energy, storage — Section V);
* :mod:`repro.core.model` — the analytical model, Equations (1)–(7);
* :mod:`repro.core.calibration` — solving for ``t_sim``, α, β from measured
  configurations (Equation 5), exactly or by least squares;
* :mod:`repro.core.whatif` — sampling-rate sweeps and budget inversions
  (Figures 9 and 10);
* :mod:`repro.core.advisor` — pipeline/rate recommendation under storage,
  energy and time constraints (Section VII's envisioned automated framework);
* :mod:`repro.core.characterization` — the full Section V experiment grid on
  a simulated platform.
"""

from repro.core.advisor import Constraints, PipelineAdvisor, Recommendation
from repro.core.calibration import CalibrationResult, calibrate_exact, calibrate_least_squares
from repro.core.characterization import CharacterizationStudy, run_characterization
from repro.core.hypotheses import HypothesisVerdict, evaluate_hypotheses, findings_summary
from repro.core.metrics import Measurement, MetricSet
from repro.core.model import DataModel, PerformanceModel
from repro.core.report import StudyReport, render_report
from repro.core.whatif import WhatIfAnalyzer

__all__ = [
    "CalibrationResult",
    "CharacterizationStudy",
    "Constraints",
    "DataModel",
    "HypothesisVerdict",
    "Measurement",
    "MetricSet",
    "PerformanceModel",
    "PipelineAdvisor",
    "Recommendation",
    "StudyReport",
    "WhatIfAnalyzer",
    "calibrate_exact",
    "calibrate_least_squares",
    "evaluate_hypotheses",
    "findings_summary",
    "render_report",
    "run_characterization",
]
