"""Study report generation.

Renders a :class:`~repro.core.characterization.CharacterizationStudy` into a
self-contained Markdown report with every section of the paper's evaluation:
the measurement tables (Section V), the calibrated model and its validation
(Section VI), and the what-if analysis (Section VII).  Downstream users run
one characterization on *their* machine and get the whole analysis document.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.characterization import CharacterizationStudy, storage_power_sweep
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.errors import ConfigurationError
from repro.paper import WHATIF_STORAGE_BUDGET_GB
from repro.units import MB, format_energy, format_seconds, years

__all__ = ["StudyReport", "render_report"]


class StudyReport:
    """Builds the Markdown report from a completed study."""

    def __init__(
        self,
        study: CharacterizationStudy,
        whatif_years: float = 100.0,
        whatif_storage_budget_gb: float = WHATIF_STORAGE_BUDGET_GB,
        whatif_intervals: Sequence[float] = (1.0, 8.0, 24.0, 72.0, 192.0),
        title: str = "In-Situ Visualization Power/Energy Characterization",
    ) -> None:
        if whatif_years <= 0:
            raise ConfigurationError(f"what-if horizon must be positive: {whatif_years}")
        if whatif_storage_budget_gb <= 0:
            raise ConfigurationError(
                f"storage budget must be positive: {whatif_storage_budget_gb}"
            )
        if not whatif_intervals:
            raise ConfigurationError("need at least one what-if interval")
        self.study = study
        self.whatif_years = whatif_years
        self.budget_gb = whatif_storage_budget_gb
        self.intervals = tuple(whatif_intervals)
        self.title = title

    # ------------------------------------------------------------- sections

    def measurements_section(self) -> str:
        """Section V: the measured grid as a Markdown table."""
        metrics = self.study.metrics
        lines = [
            "## Measurements",
            "",
            "| cadence | pipeline | time | power | energy | storage | images |",
            "|---|---|---|---|---|---|---|",
        ]
        for hours in metrics.sample_intervals():
            for pipeline in metrics.pipelines():
                m = metrics.get(pipeline, hours)
                power = (
                    f"{m.average_power / 1e3:.1f} kW" if m.average_power else "n/a"
                )
                energy = format_energy(m.energy) if m.energy else "n/a"
                lines.append(
                    f"| every {hours:g} h | {pipeline} | "
                    f"{format_seconds(m.execution_time)} | {power} | {energy} | "
                    f"{m.storage_gb:.2f} GB | {m.n_images} |"
                )
        lines += ["", "### Findings", ""]
        for line in self.study.findings().splitlines():
            lines.append(f"* {line}")
        return "\n".join(lines)

    def proportionality_section(self) -> str:
        """The storage power-proportionality benchmark."""
        rows = storage_power_sweep()
        lines = [
            "## Storage power proportionality",
            "",
            "| throughput | power |",
            "|---|---|",
        ]
        for throughput, watts in rows:
            lines.append(f"| {throughput / MB:.0f} MB/s | {watts:.1f} W |")
        idle, full = rows[0][1], rows[-1][1]
        lines += [
            "",
            f"Idle→full swing: **{100 * (full / idle - 1):.1f} %** — reducing "
            "storage traffic cannot meaningfully reduce power (Finding 2).",
        ]
        return "\n".join(lines)

    def model_section(self) -> str:
        """Section VI: calibration and validation."""
        result = self.study.calibrate()
        m = result.model
        lines = [
            "## Calibrated model",
            "",
            f"`t = (iters/{m.iter_ref}) x {m.t_sim_ref:.1f} s "
            f"+ {m.alpha:.2f} s/GB x S_io + {m.beta:.2f} s/image x N_viz`, "
            f"`E = {m.power_watts / 1e3:.1f} kW x t`",
            "",
            "### Held-out validation",
            "",
            "| configuration | measured | model | error |",
            "|---|---|---|---|",
        ]
        worst = 0.0
        for point, predicted, rel in result.validate(self.study.holdout_points()):
            worst = max(worst, abs(rel))
            lines.append(
                f"| {point.label} | {point.total_time:.1f} s | {predicted:.1f} s | "
                f"{100 * rel:+.2f}% |"
            )
        lines += ["", f"Maximum error: **{100 * worst:.2f} %**."]
        return "\n".join(lines)

    def whatif_section(self) -> str:
        """Section VII: the campaign-scale sweeps and budget inversion."""
        analyzer = self.study.analyzer()
        duration = years(self.whatif_years)
        lines = [
            f"## What-if: a {self.whatif_years:g}-year campaign",
            "",
            "| cadence | post storage | in-situ storage | energy saving |",
            "|---|---|---|---|",
        ]
        for row in analyzer.sweep(
            intervals_hours=self.intervals, duration_seconds=duration
        ):
            lines.append(
                f"| every {row.interval_hours:g} h | {row.post.s_io_gb:,.0f} GB | "
                f"{row.insitu.s_io_gb:,.1f} GB | {100 * row.energy_savings():.1f}% |"
            )
        post_limit = analyzer.finest_interval_for_storage(
            POST_PROCESSING, self.budget_gb, duration
        )
        insitu_limit = analyzer.finest_interval_for_storage(
            IN_SITU, self.budget_gb, duration
        )
        lines += [
            "",
            f"Under a **{self.budget_gb:,.0f} GB** budget, post-processing is "
            f"limited to one output every **{post_limit / 24:.1f} days**; "
            f"in-situ sustains one every **{insitu_limit:.2f} hours**.",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------- assembly

    def render(self) -> str:
        """The full Markdown document."""
        return "\n\n".join(
            [
                f"# {self.title}",
                self.measurements_section(),
                self.proportionality_section(),
                self.model_section(),
                self.whatif_section(),
            ]
        ) + "\n"

    def write(self, path: str) -> int:
        """Write the report to ``path``; returns bytes written."""
        text = self.render()
        with open(path, "w") as fh:
            fh.write(text)
        return len(text.encode())


def render_report(study: CharacterizationStudy, path: Optional[str] = None, **kwargs) -> str:
    """Convenience wrapper: build, optionally write, and return the report."""
    report = StudyReport(study, **kwargs)
    text = report.render()
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text
