"""Pipeline recommendation under constraints.

Section VII: "We envision our model being used in an automated framework to
decide the sampling rate and the pipeline automatically depending on a given
set of constraints."  :class:`PipelineAdvisor` is that framework: given
storage/energy/time budgets and a required sampling cadence, it finds for
each pipeline the finest feasible cadence and recommends the pipeline that
samples finest (ties broken by lower energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.model import Prediction
from repro.core.whatif import WhatIfAnalyzer
from repro.errors import ConfigurationError, ModelError

__all__ = ["Constraints", "Recommendation", "PipelineAdvisor"]


@dataclass(frozen=True)
class Constraints:
    """Budgets for a planned campaign.  ``None`` means unconstrained."""

    #: Campaign length in simulated seconds (required).
    duration_seconds: float
    storage_budget_gb: Optional[float] = None
    energy_budget_joules: Optional[float] = None
    time_budget_seconds: Optional[float] = None
    #: The science requirement: sampling must be at least this fine
    #: (e.g. 24 h to track eddies daily).
    required_interval_hours: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ConfigurationError(f"duration must be positive: {self.duration_seconds}")
        for name in ("storage_budget_gb", "energy_budget_joules",
                     "time_budget_seconds", "required_interval_hours"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ConfigurationError(f"{name} must be positive, got {v}")


@dataclass(frozen=True)
class Recommendation:
    """The advisor's answer for one pipeline or overall."""

    pipeline: str
    interval_hours: float
    prediction: Prediction
    feasible: bool
    rationale: str

    def summary(self) -> str:
        """One-line human-readable recommendation."""
        status = "FEASIBLE" if self.feasible else "INFEASIBLE"
        return (
            f"[{status}] {self.pipeline} @ every {self.interval_hours:.2f} h — "
            f"{self.rationale}"
        )


class PipelineAdvisor:
    """Chooses pipeline + cadence from calibrated models and constraints."""

    def __init__(self, analyzer: WhatIfAnalyzer) -> None:
        self.analyzer = analyzer

    def finest_feasible_interval(self, pipeline: str, constraints: Constraints) -> float:
        """The finest cadence (smallest interval) satisfying every budget."""
        bounds = [self.analyzer.timestep_seconds / 3_600.0]  # cannot outpace the timestep
        notes = []
        if constraints.storage_budget_gb is not None:
            h = self.analyzer.finest_interval_for_storage(
                pipeline, constraints.storage_budget_gb, constraints.duration_seconds
            )
            bounds.append(h)
            notes.append(("storage", h))
        if constraints.energy_budget_joules is not None:
            h = self.analyzer.finest_interval_for_energy(
                pipeline, constraints.energy_budget_joules, constraints.duration_seconds
            )
            bounds.append(h)
            notes.append(("energy", h))
        if constraints.time_budget_seconds is not None:
            h = self._finest_interval_for_time(
                pipeline, constraints.time_budget_seconds, constraints.duration_seconds
            )
            bounds.append(h)
            notes.append(("time", h))
        return max(bounds)

    def _finest_interval_for_time(
        self, pipeline: str, budget_seconds: float, duration_seconds: float
    ) -> float:
        predictor = self.analyzer._predictor(pipeline)
        model = predictor.model
        iters = self.analyzer.iterations_for(duration_seconds)
        floor = model.simulation_time(iters)
        if budget_seconds <= floor:
            raise ModelError(
                f"time budget {budget_seconds:.3g}s below the simulation floor "
                f"{floor:.3g}s — no cadence can satisfy it"
            )
        ref_h = predictor.data.interval_hours_ref
        variable_at_ref = (
            model.alpha * predictor.data.s_io_gb(ref_h, iters)
            + model.beta * predictor.data.n_viz(ref_h, iters)
        )
        if variable_at_ref == 0:
            return self.analyzer.timestep_seconds / 3_600.0
        return max(
            ref_h * variable_at_ref / (budget_seconds - floor),
            self.analyzer.timestep_seconds / 3_600.0,
        )

    def evaluate(self, pipeline: str, constraints: Constraints) -> Recommendation:
        """Assess one pipeline: finest feasible cadence vs the requirement."""
        finest = self.finest_feasible_interval(pipeline, constraints)
        interval = finest
        feasible = True
        if constraints.required_interval_hours is not None:
            if finest > constraints.required_interval_hours + 1e-9:
                feasible = False
                rationale = (
                    f"science requires sampling every "
                    f"{constraints.required_interval_hours:g} h but budgets only "
                    f"allow every {finest:.2f} h"
                )
            else:
                interval = constraints.required_interval_hours
                rationale = (
                    f"meets the {constraints.required_interval_hours:g} h science "
                    f"requirement (budgets would allow down to every {finest:.2f} h)"
                )
        else:
            rationale = f"finest cadence the budgets allow is every {finest:.2f} h"
        prediction = self.analyzer._predictor(pipeline).predict(
            interval, self.analyzer.iterations_for(constraints.duration_seconds)
        )
        return Recommendation(
            pipeline=pipeline,
            interval_hours=interval,
            prediction=prediction,
            feasible=feasible,
            rationale=rationale,
        )

    def recommend(self, constraints: Constraints) -> Recommendation:
        """The overall recommendation across both pipelines.

        Prefers a feasible pipeline; among feasible ones, the one that can
        sample finest; ties broken by lower predicted energy (or time when
        energy is unavailable).
        """
        candidates = [
            self.evaluate(self.analyzer.insitu.pipeline, constraints),
            self.evaluate(self.analyzer.post.pipeline, constraints),
        ]

        def sort_key(rec: Recommendation):
            cost = (
                rec.prediction.energy
                if rec.prediction.energy is not None
                else rec.prediction.execution_time
            )
            return (not rec.feasible, rec.interval_hours, cost)

        best = min(candidates, key=sort_key)
        return best
