"""Model calibration: solving Equation (5) for ``t_sim``, α and β.

The paper uses "a linear solver" over three measured configurations:

.. math::

    t_{sim} + 0.1 α + 60 β &= 676   \\\\
    t_{sim} + 0.6 α + 540 β &= 1261 \\\\
    t_{sim} + 80 α + 180 β &= 1322

("Alternatively, regression techniques may be used.")  Both are provided:
:func:`calibrate_exact` solves a square 3×3 system;
:func:`calibrate_least_squares` fits any number of points and reports
residual diagnostics.  Points with different campaign lengths are supported
through the iteration-ratio coefficient of Equation (4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.metrics import Measurement
from repro.core.model import PerformanceModel
from repro.errors import CalibrationError
from repro.paper import CAMPAIGN_TIMESTEPS
from repro.units import bytes_to_gb

__all__ = [
    "CalibrationPoint",
    "CalibrationResult",
    "calibrate_exact",
    "calibrate_least_squares",
    "points_from_measurements",
]

#: Condition numbers above this trip a :class:`CalibrationError` — the
#: chosen configurations do not separate the three cost terms.
MAX_CONDITION_NUMBER = 1e10


@dataclass(frozen=True)
class CalibrationPoint:
    """One measured configuration: workload descriptors and total time."""

    s_io_gb: float
    n_viz: float
    total_time: float
    #: Timesteps of this run, relative to the reference (1.0 = same length).
    iter_ratio: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.s_io_gb < 0 or self.n_viz < 0:
            raise CalibrationError(f"negative workload in point {self.label!r}")
        if self.total_time <= 0:
            raise CalibrationError(f"non-positive time in point {self.label!r}")
        if self.iter_ratio <= 0:
            raise CalibrationError(f"non-positive iter ratio in point {self.label!r}")


@dataclass(frozen=True)
class CalibrationResult:
    """The fitted model plus goodness-of-fit diagnostics."""

    model: PerformanceModel
    points: tuple[CalibrationPoint, ...]
    residuals: tuple[float, ...]
    condition_number: float

    @property
    def max_relative_error(self) -> float:
        """Largest |residual| / measured time over the fit points."""
        return max(
            abs(r) / p.total_time for r, p in zip(self.residuals, self.points)
        )

    def validate(self, points: Iterable[CalibrationPoint]) -> list[tuple[CalibrationPoint, float, float]]:
        """Evaluate held-out points: ``(point, predicted, relative_error)``.

        This is the paper's Fig. 8 — model built on white-square points,
        evaluated on black-triangle points, <0.5 % error.
        """
        out = []
        for p in points:
            predicted = self.model.execution_time(
                p.iter_ratio * self.model.iter_ref, p.s_io_gb, p.n_viz
            )
            rel = (predicted - p.total_time) / p.total_time
            out.append((p, predicted, rel))
        return out


def _design_matrix(points: Sequence[CalibrationPoint]) -> np.ndarray:
    return np.array([[p.iter_ratio, p.s_io_gb, p.n_viz] for p in points])


def _build_result(
    solution: np.ndarray,
    points: Sequence[CalibrationPoint],
    condition: float,
    iter_ref: int,
    power_watts: Optional[float],
) -> CalibrationResult:
    t_sim, alpha, beta = (float(v) for v in solution)
    if t_sim < 0 or alpha < 0 or beta < 0:
        raise CalibrationError(
            f"calibration produced negative coefficients "
            f"(t_sim={t_sim:.3g}, α={alpha:.3g}, β={beta:.3g}); "
            "the configurations are probably inconsistent"
        )
    model = PerformanceModel(
        t_sim_ref=t_sim, iter_ref=iter_ref, alpha=alpha, beta=beta, power_watts=power_watts
    )
    residuals = tuple(
        model.execution_time(p.iter_ratio * iter_ref, p.s_io_gb, p.n_viz) - p.total_time
        for p in points
    )
    return CalibrationResult(
        model=model,
        points=tuple(points),
        residuals=residuals,
        condition_number=condition,
    )


def calibrate_exact(
    points: Sequence[CalibrationPoint],
    iter_ref: int = CAMPAIGN_TIMESTEPS,
    power_watts: Optional[float] = None,
) -> CalibrationResult:
    """Solve the square 3-point system of Equation (5) exactly."""
    if len(points) != 3:
        raise CalibrationError(f"calibrate_exact needs exactly 3 points, got {len(points)}")
    a = _design_matrix(points)
    b = np.array([p.total_time for p in points])
    condition = float(np.linalg.cond(a))
    if not np.isfinite(condition) or condition > MAX_CONDITION_NUMBER:
        raise CalibrationError(
            f"singular/ill-conditioned system (cond={condition:.3g}); choose "
            "configurations that vary S_io and N_viz independently"
        )
    solution = np.linalg.solve(a, b)
    return _build_result(solution, points, condition, iter_ref, power_watts)


def calibrate_least_squares(
    points: Sequence[CalibrationPoint],
    iter_ref: int = CAMPAIGN_TIMESTEPS,
    power_watts: Optional[float] = None,
) -> CalibrationResult:
    """Fit ``t_sim``, α, β to any number (≥3) of points by least squares."""
    if len(points) < 3:
        raise CalibrationError(
            f"least-squares calibration needs >= 3 points, got {len(points)}"
        )
    a = _design_matrix(points)
    b = np.array([p.total_time for p in points])
    if np.linalg.matrix_rank(a) < 3:
        raise CalibrationError(
            "rank-deficient design matrix; configurations do not separate "
            "the simulation, I/O and visualization terms"
        )
    condition = float(np.linalg.cond(a))
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    return _build_result(solution, points, condition, iter_ref, power_watts)


def points_from_measurements(
    measurements: Iterable[Measurement], iter_ref: Optional[int] = None
) -> list[CalibrationPoint]:
    """Convert measured runs into calibration points.

    ``iter_ref`` defaults to the first measurement's timestep count; other
    campaign lengths enter through the iteration ratio.
    """
    points = []
    ref: Optional[int] = iter_ref
    for m in measurements:
        if ref is None:
            ref = m.n_timesteps
        points.append(
            CalibrationPoint(
                s_io_gb=bytes_to_gb(m.storage_bytes),
                n_viz=float(m.n_outputs),
                total_time=m.execution_time,
                iter_ratio=m.n_timesteps / ref,
                label=f"{m.pipeline}@{m.sample_interval_hours:g}h",
            )
        )
    if not points:
        raise CalibrationError("no measurements supplied")
    return points
