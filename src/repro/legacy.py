"""Shared machinery for deprecated positional-argument shims (PR 4 idiom).

The scenario API redesign made the platform/pipeline builder signatures
keyword-only (plus an optional frozen scenario sub-config).  The old
positional spellings keep working through :func:`merge_legacy_positionals`:
they warn once per process via :func:`repro.exec.api.warn_legacy`, collide
loudly with keyword duplicates, and overflow loudly past the old arity —
exactly like a real signature would.  This module is import-light on
purpose: it sits below every builder that needs it.
"""

from __future__ import annotations

__all__ = ["UNSET", "merge_legacy_positionals"]


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


UNSET = _Unset()


def merge_legacy_positionals(
    builder: str, values: dict, legacy: tuple, replacement: str
) -> None:
    """Fold deprecated positional arguments into the keyword value map.

    ``values`` maps parameter names (in the old positional order) to the
    keyword values received — :data:`UNSET` where the caller did not pass
    one.  Mutates ``values`` in place.
    """
    from repro.exec.api import warn_legacy

    warn_legacy(f"{builder} with positional arguments", replacement)
    names = tuple(values)
    if len(legacy) > len(names):
        raise TypeError(
            f"{builder} takes at most {len(names)} deprecated positional "
            f"argument(s), got {len(legacy)}"
        )
    for key, value in zip(names, legacy):
        if values[key] is not UNSET:
            raise TypeError(
                f"{builder} got multiple values for argument {key!r}"
            )
        values[key] = value
