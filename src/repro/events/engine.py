"""Core of the discrete-event simulation engine.

The engine is deliberately small but complete enough for the cluster and
storage models built on top of it:

* :class:`Simulator` — the event loop.  Time is a ``float`` in seconds and
  only ever moves forward.
* :class:`Event` — one-shot occurrence with callbacks and a value.
* :class:`Timeout` — an event scheduled at ``now + delay``.
* :class:`Process` — a generator that yields events; the engine resumes it
  when the yielded event fires, sending the event's value back in (or
  throwing, if the event failed).
* :class:`AllOf` / :class:`AnyOf` — composite events for fan-in.

Determinism: events scheduled for the same time fire in scheduling order
(FIFO), which makes every simulation in this library reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import DeadlockError, Interrupt, SimulationError

__all__ = ["Event", "Timeout", "Process", "AllOf", "AnyOf", "Simulator"]

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, after which the simulator invokes its callbacks in order.
    Triggering an already-triggered event is an error.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        #: set True when a failure was handled (prevents the "unhandled
        #: failed event" crash at the end of the run)
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after it is created."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._enqueue(self, delay=delay)


class Process(Event):
    """Wraps a generator; the process *is* an event that fires on return.

    The generator yields :class:`Event` instances.  When a yielded event
    triggers, the generator is resumed with the event's value (``throw`` if
    the event failed).  The value of the process-event is the generator's
    return value.

    Failure semantics: an exception the generator does not catch *fails* the
    process-event, so supervisors can ``yield proc`` and handle it; if nobody
    handles (defuses) the failure, the exception propagates out of
    :meth:`Simulator.run` exactly as before.  :meth:`interrupt` throws an
    exception into the generator at the current simulated time, detaching it
    from whatever it was waiting on — ``try/finally`` blocks in the generator
    run, so resources can be cleaned up mid-flight.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current time.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed()
        sim._active_processes += 1

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, exception: Optional[BaseException] = None) -> None:
        """Throw ``exception`` into the process at the current simulated time.

        The process is detached from the event it is waiting on and resumed
        with the exception raised at its current ``yield``; ``try/finally``
        blocks run, so in-flight operations can release resources.  The
        default exception is :class:`~repro.errors.Interrupt`.  Delivery is
        an ordinary scheduled event (FIFO at the current time), so interrupts
        are deterministic; if the process finishes before delivery the
        interrupt is silently dropped.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt {self!r}: process already finished")
        exc = exception if exception is not None else Interrupt(f"process {self.name!r} interrupted")
        if not isinstance(exc, BaseException):
            raise TypeError(f"interrupt() requires an exception, got {exc!r}")
        delivery = Event(self.sim)
        delivery.callbacks.append(self._deliver_interrupt)
        delivery.fail(exc)

    def _deliver_interrupt(self, delivery: Event) -> None:
        delivery.defused = True
        if self.triggered:
            return  # completed (or crashed) between scheduling and delivery
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None
        self._resume(delivery)

    def _resume(self, trigger: Event) -> None:
        sim = self.sim
        event: Any = trigger
        while True:
            try:
                if event._ok:
                    target = self.generator.send(event._value if event._value is not _PENDING else None)
                else:
                    event.defused = True
                    target = self.generator.throw(event._value)
            except StopIteration as stop:
                sim._active_processes -= 1
                self._value = stop.value
                sim._enqueue(self)
                return
            except Exception as exc:
                # The generator died: fail the process-event so supervisors
                # waiting on it can handle the failure.  If nobody defuses
                # it, step() re-raises — the pre-existing crash behaviour.
                sim._active_processes -= 1
                self._ok = False
                self._value = exc
                sim._enqueue(self)
                return
            except BaseException:
                # KeyboardInterrupt / SystemExit abort the run outright.
                sim._active_processes -= 1
                raise
            if not isinstance(target, Event):
                self.generator.throw(
                    SimulationError(f"process {self.name!r} yielded {target!r}, not an Event")
                )
                continue
            if target.sim is not sim:
                self.generator.throw(
                    SimulationError("yielded an event belonging to another Simulator")
                )
                continue
            if target.processed:
                # Already fired and delivered: resume immediately with its value.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            return


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._n_fired = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self.events:
            self.succeed(self._result())
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _result(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.triggered and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when all constituent events have fired (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._result())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self.succeed(self._result())


class Simulator:
    """The discrete-event loop.

    Usage::

        sim = Simulator()
        sim.process(gen)      # register processes
        sim.run()             # run to quiescence (or run(until=t))
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = 0
        self._active_processes = 0
        self._n_processed = 0
        self._step_listeners: list[Callable[[Event, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Events currently scheduled (the live heap size)."""
        return len(self._heap)

    @property
    def active_processes(self) -> int:
        """Processes started and not yet finished."""
        return self._active_processes

    @property
    def events_processed(self) -> int:
        """Events processed since the simulator was created."""
        return self._n_processed

    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        self._counter += 1
        heapq.heappush(self._heap, (self._now + delay, self._counter, event))

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process starting now."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every event in ``events`` fires."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first event in ``events`` fires."""
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def peek_event(self) -> Optional[Event]:
        """The next event to be processed, or ``None`` when idle."""
        return self._heap[0][2] if self._heap else None

    def add_step_listener(self, listener: Callable[[Event, float], None]) -> Callable:
        """Observe every processed event: ``listener(event, now)``.

        Listeners run *after* an event's callbacks, strictly observationally
        — they cannot change event order or timing.  This is the engine-level
        hook that :class:`~repro.events.tracing.EventTracer` and the
        telemetry layer (:mod:`repro.obs`) both consume.  Returns the
        listener for symmetric use with :meth:`remove_step_listener`.
        """
        self._step_listeners.append(listener)
        return listener

    def remove_step_listener(self, listener: Callable[[Event, float], None]) -> None:
        """Stop notifying ``listener``; unknown listeners are ignored."""
        try:
            self._step_listeners.remove(listener)
        except ValueError:
            pass

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        time, _, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - guarded by _enqueue
            raise SimulationError("event scheduled in the past")
        self._now = time
        self._n_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value
        if self._step_listeners:
            for listener in tuple(self._step_listeners):
                listener(event, self._now)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        Raises
        ------
        DeadlockError
            If the queue drains while processes are still alive (they are
            waiting on events nobody will trigger).
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        while self._heap:
            if until is not None and self.peek() > until:
                self._now = until
                return
            self.step()
        if self._active_processes > 0:
            raise DeadlockError(
                f"event queue drained with {self._active_processes} process(es) still waiting"
            )
        if until is not None:
            self._now = until
