"""Event tracing for the discrete-event engine.

Observes a :class:`~repro.events.engine.Simulator` through the engine's
public step-listener hook (:meth:`Simulator.add_step_listener`) so every
processed event is recorded as a :class:`TraceRecord`.  Used when debugging
workflow orchestration ("why did the staging partition stall at t=812?")
and by tests that assert on causal ordering.  Tracing is strictly
observational: it never changes event order or timing.

The record buffer is a ``collections.deque`` with ``maxlen`` when a
capacity is given, so eviction is O(1) regardless of trace length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import ConfigurationError
from repro.events.engine import Event, Process, Simulator, Timeout

__all__ = ["TraceRecord", "EventTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""

    index: int
    time: float
    kind: str
    ok: bool
    name: str = ""

    def __str__(self) -> str:
        status = "" if self.ok else " FAILED"
        label = f" {self.name}" if self.name else ""
        return f"[{self.index:>6d}] t={self.time:<12.4f} {self.kind}{label}{status}"


class EventTracer:
    """Records every event a simulator processes.

    Usage::

        sim = Simulator()
        tracer = EventTracer(sim)
        ... run ...
        print(tracer.summary())
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.predicate = predicate
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0
        self._counter = 0
        sim.add_step_listener(self._on_step)

    def _classify(self, event: Event) -> tuple[str, str]:
        if isinstance(event, Process):
            return ("process-end", event.name)
        if isinstance(event, Timeout):
            return ("timeout", "")
        return (type(event).__name__.lower(), "")

    def _on_step(self, event: Event, time: float) -> None:
        kind, name = self._classify(event)
        record = TraceRecord(
            index=self._counter,
            time=time,
            kind=kind,
            ok=event.ok if event.triggered else True,
            name=name,
        )
        self._counter += 1
        if self.predicate is not None and not self.predicate(record):
            return
        if self.capacity is not None and len(self.records) == self.capacity:
            self._dropped += 1
        self.records.append(record)

    # --------------------------------------------------------------- queries

    @property
    def n_processed(self) -> int:
        """Total events processed while tracing."""
        return self._counter

    @property
    def n_dropped(self) -> int:
        """Records evicted by the capacity ring."""
        return self._dropped

    def by_kind(self) -> dict[str, int]:
        """Histogram of recorded event kinds."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def between(self, t0: float, t1: float) -> list[TraceRecord]:
        """Records with ``t0 <= time <= t1``."""
        return [r for r in self.records if t0 <= r.time <= t1]

    def summary(self, last: int = 10) -> str:
        """Human-readable tail of the trace."""
        lines = [
            f"{self._counter} events processed, {len(self.records)} recorded"
            + (f" ({self._dropped} dropped)" if self._dropped else "")
        ]
        lines += [str(r) for r in list(self.records)[-last:]]
        return "\n".join(lines)

    def detach(self) -> None:
        """Stop tracing; the simulator keeps running untouched."""
        self.sim.remove_step_listener(self._on_step)
