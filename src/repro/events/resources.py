"""Shared-resource primitives for the event engine.

* :class:`Resource` — a counted resource with a FIFO wait queue (used for
  e.g. metadata-server request slots and I/O aggregator slots).
* :class:`Store` — an unbounded FIFO of Python objects with blocking ``get``.
* :class:`BandwidthPipe` — the workhorse of the storage model: a link of
  fixed capacity shared by concurrent transfers under processor sharing
  (max-min fair with optional per-transfer rate caps).  This is how the
  Lustre OSS backend's ~160 MB/s aggregate bandwidth is modelled.

All completion times are exact (piecewise-linear progress, no polling): the
pipe reprograms a single wake-up event whenever its membership changes.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Optional

from repro.errors import ResourceError
from repro.events.engine import Event, Simulator

__all__ = ["Resource", "Store", "Transfer", "BandwidthPipe"]

#: Residual bytes below which a transfer is considered complete (guards
#: against float round-off in progress accounting).  This floor is widened
#: dynamically with the clock's float resolution — see
#: :meth:`BandwidthPipe._completion_epsilon`.
_EPSILON_BYTES = 1e-6


class Resource:
    """A counted resource with FIFO queueing.

    Usage inside a process::

        req = resource.request()
        yield req
        ...  # critical section
        resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ResourceError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        #: Optional human-readable identity (used by timeline probes).
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()
        self._granted: set[int] = set()

    @property
    def in_use(self) -> int:
        """Number of grants currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._queue)

    @property
    def utilization(self) -> float:
        """Fraction of slots currently granted, in [0, 1]."""
        return self._in_use / self.capacity

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted.add(id(event))
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self, request: Event) -> None:
        """Release the slot held by ``request``.

        A request that is still *queued* (never granted) is cancelled
        instead — it is removed from the wait queue without touching the
        grant count.  This makes ``try/finally`` release correct for
        processes interrupted while waiting on the resource.
        """
        if id(request) in self._granted:
            self._granted.remove(id(request))
            if self._queue:
                nxt = self._queue.popleft()
                self._granted.add(id(nxt))
                nxt.succeed()
            else:
                self._in_use -= 1
            return
        try:
            self._queue.remove(request)
        except ValueError:
            raise ResourceError(
                "release() of a request that does not hold the resource"
            ) from None


class Store:
    """An unbounded FIFO store of arbitrary items with blocking ``get``."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event whose value is the next item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Transfer(Event):
    """A single in-flight transfer on a :class:`BandwidthPipe`.

    The transfer *is* an event: it fires (with value = size in bytes) when
    the last byte has moved.  ``rate`` is the instantaneous share of the pipe
    assigned to this transfer; it changes as other transfers come and go.
    """

    __slots__ = ("size", "remaining", "cap", "rate", "started_at", "tag")

    def __init__(self, sim: Simulator, size: float, cap: Optional[float], tag: str) -> None:
        super().__init__(sim)
        self.size = float(size)
        self.remaining = float(size)
        self.cap = cap
        self.rate = 0.0
        self.started_at = sim.now
        self.tag = tag


class BandwidthPipe:
    """A shared link with max-min fair bandwidth allocation.

    Parameters
    ----------
    sim:
        The owning simulator.
    capacity:
        Aggregate link bandwidth in bytes/second.
    on_rate_change:
        Optional callback ``f(time, total_rate)`` invoked whenever the
        aggregate throughput changes — this is how power models observe
        storage utilization without polling.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        on_rate_change: Optional[Callable[[float, float], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ResourceError(f"pipe capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self.on_rate_change = on_rate_change
        self._active: list[Transfer] = []
        self._last_update = sim.now
        self._wakeup_token = 0
        self._bytes_moved = 0.0

    # ------------------------------------------------------------------ API

    @property
    def active_transfers(self) -> int:
        """Number of in-flight transfers."""
        return len(self._active)

    @property
    def current_rate(self) -> float:
        """Aggregate instantaneous throughput in bytes/second."""
        return sum(t.rate for t in self._active)

    @property
    def utilization(self) -> float:
        """Fraction of link capacity currently in use, in [0, 1]."""
        return self.current_rate / self.capacity

    @property
    def bytes_moved(self) -> float:
        """Total bytes that have completed moving through the pipe."""
        self._advance()
        return self._bytes_moved

    def transfer(self, size: float, cap: Optional[float] = None, tag: str = "") -> Transfer:
        """Start moving ``size`` bytes; returns the completion event.

        ``cap`` optionally limits this transfer's rate (bytes/s), modelling a
        slow client NIC or a single-OST stripe limit.
        """
        if size < 0:
            raise ResourceError(f"negative transfer size: {size}")
        if cap is not None and cap <= 0:
            raise ResourceError(f"transfer cap must be positive, got {cap}")
        t = Transfer(self.sim, size, cap, tag)
        if size <= _EPSILON_BYTES:
            t.succeed(0.0)
            return t
        self._advance()
        self._active.append(t)
        self._reprogram()
        return t

    def cancel(self, transfer: Transfer) -> float:
        """Abort an in-flight transfer, discarding its partial progress.

        The bytes the transfer had already moved are rolled back out of
        :attr:`bytes_moved` — an aborted write never becomes durable data,
        so the byte counter stays consistent with the committed namespace.
        Returns the discarded byte count; cancelling a transfer that is not
        in flight (already complete, or never started) is a no-op returning
        0.0, so cleanup paths may call it unconditionally.
        """
        if transfer not in self._active:
            return 0.0
        self._advance()
        self._active.remove(transfer)
        discarded = transfer.size - transfer.remaining
        self._bytes_moved -= discarded
        transfer.remaining = 0.0
        transfer.rate = 0.0
        self._reprogram()
        return discarded

    def set_capacity(self, capacity: float) -> None:
        """Reprogram the link to a new aggregate bandwidth, effective now.

        Progress under the old rates is applied first, then every in-flight
        transfer's share is recomputed — this is how injected OST dropouts
        and bandwidth brownouts act on the storage model.
        """
        if capacity <= 0:
            raise ResourceError(f"pipe capacity must be positive, got {capacity}")
        self._advance()
        self.capacity = float(capacity)
        self._reprogram()

    # ------------------------------------------------------------ internals

    def _advance(self) -> None:
        """Apply progress at current rates from the last update to now."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0.0:
            for t in self._active:
                moved = min(t.rate * dt, t.remaining)
                t.remaining -= moved
                self._bytes_moved += moved
            self._last_update = now
        else:
            self._last_update = now

    def _allocate(self) -> None:
        """Max-min fair allocation with per-transfer caps (water-filling)."""
        pending = list(self._active)
        budget = self.capacity
        # Repeatedly grant capped transfers less than the fair share, then
        # split the remainder equally among the rest.
        while pending:
            share = budget / len(pending)
            constrained = [t for t in pending if t.cap is not None and t.cap < share]
            if not constrained:
                for t in pending:
                    t.rate = share
                return
            for t in constrained:
                t.rate = t.cap
                budget -= t.cap
                pending.remove(t)
        # All transfers were capped; leftover budget simply goes unused.

    def _completion_epsilon(self) -> float:
        """Residual-byte threshold below which a transfer counts as done.

        The simulated clock is a float: once ``now`` is large, a wake-up
        scheduled at ``now + remaining/rate`` lands on a grid coarser than
        the exact completion time, leaving a residual of up to
        ``capacity * ulp(now)`` bytes.  Treat anything inside a few ulps'
        worth of bytes as complete, or the pipe would re-arm zero-length
        wake-ups forever.
        """
        return max(_EPSILON_BYTES, 4.0 * self.capacity * math.ulp(max(self.sim.now, 1.0)))

    def _reprogram(self) -> None:
        """Recompute rates and schedule the next completion wake-up."""
        # Drop completed transfers and fire their events.
        eps = self._completion_epsilon()
        finished = [t for t in self._active if t.remaining <= eps]
        for t in finished:
            self._active.remove(t)
            self._bytes_moved += t.remaining  # account the rounded-off tail
            t.remaining = 0.0
            t.rate = 0.0
            t.succeed(t.size)
        self._allocate()
        if self.on_rate_change is not None:
            self.on_rate_change(self.sim.now, self.current_rate)
        if not self._active:
            return
        horizon = min(t.remaining / t.rate for t in self._active if t.rate > 0.0)
        # Never arm a wake-up the float clock cannot distinguish from "now".
        horizon = max(horizon, 2.0 * math.ulp(max(self.sim.now, 1.0)))
        self._wakeup_token += 1
        token = self._wakeup_token
        wake = self.sim.timeout(horizon)
        wake.callbacks.append(lambda _ev, tok=token: self._on_wakeup(tok))

    def _on_wakeup(self, token: int) -> None:
        if token != self._wakeup_token:
            return  # stale wake-up; membership changed since it was armed
        self._advance()
        self._reprogram()
