"""A small discrete-event simulation engine.

This is the substrate under the compute-cluster and storage simulators: a
priority-queue event loop with generator-based processes (in the style of
SimPy), counted resources, and a fair-share bandwidth pipe used to model
shared links such as the Lustre object-storage backend.

Example
-------
>>> from repro.events import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.events.engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.events.resources import BandwidthPipe, Resource, Store, Transfer

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthPipe",
    "Event",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
    "Transfer",
]
