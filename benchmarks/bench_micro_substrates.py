"""Micro-benchmarks of the substrates the reproduction is built on.

Not a paper artifact — these keep the simulator itself honest: event-loop
throughput, fair-share pipe reprogramming, the pseudo-spectral solver step,
Okubo-Weiss + detection, the PNG codec and the nclite container.  Regressions
here make every campaign-scale study slower.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.engine import Simulator
from repro.events.resources import BandwidthPipe
from repro.io.ncformat import NcliteFile, write_nclite
from repro.ocean.driver import MiniOceanDriver
from repro.ocean.eddies import detect_eddies
from repro.ocean.okubo_weiss import okubo_weiss
from repro.viz.image import png_decode, png_encode


def test_event_loop_throughput(benchmark):
    """Process 10k chained timeouts."""

    def run():
        sim = Simulator()

        def chain():
            for _ in range(10_000):
                yield sim.timeout(1.0)

        sim.process(chain())
        sim.run()
        return sim.now

    now = benchmark(run)
    assert now == 10_000.0


def test_bandwidth_pipe_churn(benchmark):
    """500 staggered transfers forcing constant fair-share reprogramming."""

    def run():
        sim = Simulator()
        pipe = BandwidthPipe(sim, capacity=1e8)

        def feeder():
            for i in range(500):
                pipe.transfer(1e6 + i)
                yield sim.timeout(0.003)

        sim.process(feeder())
        sim.run()
        return pipe.bytes_moved

    moved = benchmark(run)
    assert moved == pytest.approx(500 * 1e6 + sum(range(500)), rel=1e-6)


def test_solver_step(benchmark):
    """One RK4 step of the 128x64 mini ocean."""
    driver = MiniOceanDriver(nx=128, ny=64, seed=0)

    benchmark(lambda: driver.advance(1))

    assert driver.step_count >= 1


def test_okubo_weiss_and_detection(benchmark):
    driver = MiniOceanDriver(nx=128, ny=64, seed=0)
    driver.advance(10)
    u, v = driver.solver.velocity()

    def run():
        w = okubo_weiss(u, v, driver.grid.dx, driver.grid.dy)
        return detect_eddies(w)

    eddies = benchmark(run)
    assert eddies


def test_png_codec(benchmark):
    rng = np.random.default_rng(0)
    smooth = np.cumsum(rng.integers(-2, 3, size=(240, 320, 3)), axis=1) % 256
    pixels = smooth.astype(np.uint8)

    def run():
        return png_decode(png_encode(pixels))

    back = benchmark(run)
    np.testing.assert_array_equal(back, pixels)


def test_nclite_serialize(benchmark, tmp_path):
    driver = MiniOceanDriver(nx=128, ny=64, seed=0)
    driver.advance(3)
    fields = driver.output_fields()
    path = str(tmp_path / "bench.ncl")

    n = benchmark(lambda: write_nclite(path, fields))

    assert n > 0
    back = NcliteFile.read(path)
    assert set(back.variables) == set(fields)
