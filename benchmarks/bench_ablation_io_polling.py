"""Ablation — MPI busy-polling vs blocking waits (Hypothesis 3).

The paper found in-situ does *not* harness trapped capacity (Finding 3)
because ranks spin-poll during collective I/O, keeping CPUs hot.  Section
VIII suggests managing those wait states.  This ablation sweeps the I/O-wait
utilization level: with blocking waits (low utilization), post-processing
power drops, in-situ *does* raise power utilization — and Hypothesis 3 comes
true, exactly as the paper's discussion predicts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.cluster.machine import PhaseProfile
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.exec.api import RunRequest
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.units import MONTH

IO_WAIT_LEVELS = (0.85, 0.6, 0.4, 0.2, 0.05)


def _power_pair(io_wait: float):
    spec = PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=2 * MONTH),
        sampling=SamplingPolicy(8.0),
    )
    out = {}
    for pipeline in (InSituPipeline(), PostProcessingPipeline()):
        profile = PhaseProfile(io_wait=io_wait)
        platform = SimulatedPlatform(phase_profile=profile)
        m = pipeline.execute(RunRequest(spec=spec), platform=platform).measurement
        out[pipeline.name] = m.average_power
    return out


def test_ablation_io_wait_polling(benchmark):
    rows = []
    for level in IO_WAIT_LEVELS:
        p = _power_pair(level)
        change = p[IN_SITU] / p[POST_PROCESSING] - 1.0
        rows.append((level, p[IN_SITU], p[POST_PROCESSING], change))

    benchmark(lambda: _power_pair(0.85))

    lines = [
        "Ablation — Hypothesis 3 vs I/O-wait CPU utilization (8 h cadence)",
        f"{'io-wait util':>13s} {'in-situ kW':>11s} {'post kW':>9s} {'power change':>13s}",
    ]
    for level, insitu, post, change in rows:
        lines.append(
            f"{level:>13.2f} {insitu / 1e3:>11.1f} {post / 1e3:>9.1f} {100 * change:>+12.1f}%"
        )
    lines += [
        "util 0.85 (spin-polling MPI, the measured machine): power flat -> "
        "Hypothesis 3 disproved (Finding 3)",
        "util 0.05 (blocking waits, Section VIII's proposal): in-situ raises "
        "power utilization -> Hypothesis 3 would hold",
    ]
    emit("ablation_io_polling", lines)

    # Spin-polling: no meaningful difference (the paper's measurement).
    assert abs(rows[0][3]) < 0.05
    # Blocking waits: in-situ visibly harnesses trapped capacity.
    assert rows[-1][3] > 0.10
    # The effect strengthens monotonically as waits get idler.
    changes = [r[3] for r in rows]
    assert changes == sorted(changes)
