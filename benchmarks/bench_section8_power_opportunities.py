"""Section VIII — the paper's power-reduction opportunities, quantified.

Four proposals from the discussion section, each implemented and measured:

1. **Idle-period management on compute** — put CPUs in low-power states
   during the (many, short) I/O waits.  Today's techniques need prolonged
   idleness and recover nothing; the millisecond-level techniques the paper
   points to recover a large fraction of the post-processing run's energy.
2. **DVFS on the storage nodes' CPUs** — run them at the minimum frequency
   the demanded bandwidth needs.
3. **Wimpy storage CPUs** — replace the brawny storage-side CPUs outright.
4. **Backfill co-scheduling** (the Legion reference) — instead of idling
   the waits away, run a second job in them.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.cluster.backfill import BackfillScheduler
from repro.cluster.power import e5_2670_node
from repro.core.metrics import POST_PROCESSING
from repro.power.states import IdlePeriodManager
from repro.storage.governor import StorageDvfsGovernor, wimpy_storage_model
from repro.storage.power import StoragePowerModel
from repro.units import joules_to_kwh


def test_section8_idle_period_management(study, benchmark):
    m = study.metrics.get(POST_PROCESSING, 8.0)
    manager = IdlePeriodManager(e5_2670_node(), n_nodes=150)

    savings = benchmark(lambda: manager.analyze(m.timeline))

    lines = [
        "Section VIII — compute idle-period management, post-processing @ 8 h",
        f"run energy {joules_to_kwh(m.energy):.1f} kWh across "
        f"{len(manager.wait_intervals(m.timeline))} wait intervals "
        f"({m.io_time:.0f} s of waits)",
        f"{'state':>12s} {'floor':>8s} {'managed':>9s} {'saved kWh':>10s} "
        f"{'of run':>7s} {'penalty':>8s}",
    ]
    for s in savings:
        lines.append(
            f"{s.state.name:>12s} {s.state.min_interval_seconds:>6.2f} s "
            f"{s.n_managed:>4d}/{s.n_intervals:<4d} "
            f"{joules_to_kwh(s.energy_saved_joules):>10.2f} "
            f"{100 * s.savings_fraction(m.energy):>6.1f}% "
            f"{s.time_penalty_seconds:>7.2f}s"
        )
    lines.append(
        "today's prolonged-idleness techniques (pkg-sleep) recover nothing — "
        "the paper's point; millisecond states unlock the waits"
    )
    emit("section8_idle_management", lines)

    by_name = {s.state.name: s for s in savings}
    assert by_name["pkg-sleep"].n_managed == 0  # waits are seconds, floor is 30 s
    assert by_name["cc6-fast"].savings_fraction(m.energy) > 0.25
    assert by_name["cc6-fast"].time_penalty_seconds < 0.01 * m.execution_time


def test_section8_storage_governor(benchmark):
    base = StoragePowerModel()
    governor = StorageDvfsGovernor(base)

    governed_idle = benchmark(lambda: governor.power(0.0))

    wimpy = wimpy_storage_model(base)
    demands = (0.0, 40e6, 80e6, 160e6)
    lines = [
        "Section VIII — storage-side power management",
        f"{'demand MB/s':>12s} {'stock W':>8s} {'DVFS W':>7s} {'wimpy W':>8s}",
    ]
    for d in demands:
        lines.append(
            f"{d / 1e6:>12.0f} {base.power(d):>8.0f} {governor.power(d):>7.0f} "
            f"{wimpy.power(d):>8.0f}"
        )
    lines += [
        f"DVFS governor shaves {governor.idle_savings_watts():.0f} W at idle "
        f"({100 * governor.idle_savings_watts() / base.idle_watts:.0f}% of the rack floor)",
        f"wimpy CPUs shave {base.idle_watts - wimpy.idle_watts:.0f} W at every load",
        "both close part of the proportionality gap behind Finding 2",
    ]
    emit("section8_storage_governor", lines)

    assert governed_idle < base.idle_watts
    # Full demand needs nominal frequency: no dynamic-range regression.
    assert governor.power(base.rated_bandwidth) == pytest.approx(
        base.full_load_watts, rel=1e-9
    )
    # The governed rack is far more power-proportional than the stock one.
    stock_prop = base.full_load_watts / base.idle_watts - 1.0
    governed_prop = governor.power(base.rated_bandwidth) / governor.power(0.0) - 1.0
    assert governed_prop > 20 * stock_prop
    assert wimpy.idle_watts < base.idle_watts
    assert wimpy.dynamic_watts == pytest.approx(base.dynamic_watts)


def test_section8_backfill_coscheduling(study, benchmark):
    m = study.metrics.get(POST_PROCESSING, 8.0)
    scheduler = BackfillScheduler(e5_2670_node(), n_nodes=150)

    report = benchmark(lambda: scheduler.harvest(m.timeline))

    fraction = scheduler.equivalent_campaign_fraction(
        m.timeline, campaign_node_seconds=150 * m.execution_time
    )
    lines = [
        "Section VIII — backfill co-scheduling (Legion-style), post @ 8 h",
        f"waits: {report.n_intervals} intervals, {report.wait_seconds:.0f} s total",
        f"backfilled: {report.n_backfilled} slices -> "
        f"{report.harvested_node_hours:.0f} node-hours of secondary work",
        f"equivalent to {100 * fraction:.0f}% of a second campaign riding along",
        f"extra energy vs busy-polling: "
        f"{report.extra_energy_joules / 3.6e6:+.2f} kWh (the watts were burning anyway)",
        "complementary to idle-period management: sleep the waits, or fill them",
    ]
    emit("section8_backfill", lines)

    assert report.harvested_node_hours > 30.0
    assert 0.3 < fraction < 0.8
