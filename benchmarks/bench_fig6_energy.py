"""Fig. 6 — energy consumption of both pipelines at 8/24/72 h.

"Because power was nearly constant, the energy consumed closely tracks
execution time": 50 % / 38 % / 19 % savings.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.units import joules_to_kwh


def test_fig6_energy(study, benchmark):
    lines = [
        "Fig. 6 — energy (kWh), compute + storage",
        f"{'cadence':>10s} {'in-situ':>9s} {'post':>9s} {'saving':>8s} {'paper':>7s}",
    ]
    savings = benchmark(
        lambda: {h: study.metrics.energy_savings(h) for h in paper.SAMPLING_INTERVALS_HOURS}
    )
    for hours in paper.SAMPLING_INTERVALS_HOURS:
        insitu = study.metrics.get(IN_SITU, hours).energy
        post = study.metrics.get(POST_PROCESSING, hours).energy
        saving = savings[hours]
        lines.append(
            f"{hours:>8.0f} h {joules_to_kwh(insitu):>9.1f} {joules_to_kwh(post):>9.1f} "
            f"{100 * saving:>7.0f}% {100 * paper.ENERGY_SAVINGS[hours]:>6.0f}%"
        )
        assert saving == pytest.approx(paper.ENERGY_SAVINGS[hours], abs=0.07)
    emit("fig6_energy", lines)


def test_fig6_energy_tracks_time(study, benchmark):
    """The paper's mechanism: flat power makes E proportional to t."""
    benchmark(lambda: study.metrics.energy_savings(8.0))
    for hours in paper.SAMPLING_INTERVALS_HOURS:
        e = study.metrics.energy_savings(hours)
        t = study.metrics.time_savings(hours)
        assert e == pytest.approx(t, abs=0.04)


def test_fig6_energy_integration_cost(benchmark, study):
    m = study.metrics.get(POST_PROCESSING, 8.0)
    total = m.power_report.total

    energy = benchmark(total.energy)

    assert energy > 0
