"""Ablation — render cost β vs the in-situ energy advantage.

In-situ wins because β·N_viz (rendering it must do anyway) is far cheaper
than the α·S_io it avoids.  As rendering gets more expensive, the advantage
shrinks; this sweep locates the crossover where in-situ stops paying off at
the paper's 24-hour cadence.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.model import DataModel, PerformanceModel, PipelinePredictor
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.core.whatif import WhatIfAnalyzer

BETA_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def _analyzer(beta: float) -> WhatIfAnalyzer:
    model = PerformanceModel(
        t_sim_ref=paper.EQ5_T_SIM,
        iter_ref=paper.CAMPAIGN_TIMESTEPS,
        alpha=paper.EQ5_ALPHA_S_PER_GB,
        beta=beta,
        power_watts=46_300.0,
    )
    insitu = PipelinePredictor(
        IN_SITU, model, DataModel(24.0, 0.2, 180.0, paper.CAMPAIGN_TIMESTEPS)
    )
    post_model = PerformanceModel(
        t_sim_ref=model.t_sim_ref, iter_ref=model.iter_ref,
        alpha=model.alpha, beta=paper.EQ5_BETA_S_PER_IMAGE,
        power_watts=model.power_watts,
    )
    # Post-processing renders offline at the paper's measured cost; only the
    # in-situ render slot competes with simulation time.
    post = PipelinePredictor(
        POST_PROCESSING, post_model, DataModel(24.0, 80.0, 180.0, paper.CAMPAIGN_TIMESTEPS)
    )
    return WhatIfAnalyzer(insitu, post, timestep_seconds=paper.TIMESTEP_SECONDS)


def test_ablation_render_cost(benchmark):
    rows = []
    for mult in BETA_MULTIPLIERS:
        analyzer = _analyzer(mult * paper.EQ5_BETA_S_PER_IMAGE)
        (row,) = analyzer.sweep(intervals_hours=[24.0])
        rows.append((mult, row.time_savings(), row.energy_savings()))

    benchmark(
        lambda: _analyzer(paper.EQ5_BETA_S_PER_IMAGE).sweep(intervals_hours=[24.0])
    )

    lines = [
        "Ablation — in-situ savings vs per-image render cost (24 h cadence)",
        f"{'beta multiplier':>16s} {'beta s/img':>11s} {'time saving':>12s} {'energy saving':>14s}",
    ]
    for mult, t, e in rows:
        lines.append(
            f"{mult:>16.1f} {mult * paper.EQ5_BETA_S_PER_IMAGE:>11.1f} "
            f"{100 * t:>11.1f}% {100 * e:>13.1f}%"
        )
    crossover = next((m for m, t, _ in rows if t <= 0), None)
    lines.append(
        f"in-situ stops winning near beta x{crossover:g} "
        f"(≈{crossover * paper.EQ5_BETA_S_PER_IMAGE:.0f} s/image)"
        if crossover
        else "in-situ wins across the whole sweep"
    )
    emit("ablation_render_cost", lines)

    # At the paper's beta, savings match Fig. 3's 38 %.
    at_paper = next(r for r in rows if r[0] == 1.0)
    assert at_paper[1] == pytest.approx(0.38, abs=0.03)
    # Savings decrease monotonically and eventually go negative.
    savings = [t for _, t, _ in rows]
    assert savings == sorted(savings, reverse=True)
    assert savings[-1] < 0
