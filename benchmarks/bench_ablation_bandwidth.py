"""Ablation — Lustre aggregate bandwidth moves the in-situ advantage.

The paper's α ≈ 6.3 s/GB is the reciprocal of the rack's ~160 MB/s.  Faster
storage shrinks the post-processing I/O penalty and with it the in-situ
time/energy savings; this sweep locates where the advantage (at the paper's
8-hour cadence) effectively vanishes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.cluster.machine import caddy
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.events.engine import Simulator
from repro.exec.api import RunRequest
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.storage.lustre import LustreFileSystem, StorageCluster
from repro.units import MB, MONTH

BANDWIDTHS_MB_S = (160, 320, 640, 1_280, 2_560, 10_240)


def _savings_at(bandwidth_mb_s: float) -> float:
    spec = PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=2 * MONTH),
        sampling=SamplingPolicy(8.0),
    )
    times = {}
    for pipeline in (InSituPipeline(), PostProcessingPipeline()):
        sim = Simulator()
        cluster = caddy(sim)
        write_bw = bandwidth_mb_s * MB  # repro-unit: bytes_per_s
        read_bw = max(1_000 * MB, 2 * write_bw)  # repro-unit: bytes_per_s
        fs = LustreFileSystem(
            sim,
            write_bandwidth=write_bw,
            read_bandwidth=read_bw,
        )
        storage = StorageCluster(sim, filesystem=fs)
        platform = SimulatedPlatform(cluster=cluster, storage=storage)
        run = pipeline.execute(RunRequest(spec=spec), platform=platform)
        times[pipeline.name] = run.measurement.execution_time
    return 1.0 - times[IN_SITU] / times[POST_PROCESSING]


def test_ablation_storage_bandwidth(benchmark):
    rows = [(bw, _savings_at(bw)) for bw in BANDWIDTHS_MB_S]

    benchmark(lambda: _savings_at(160))

    lines = [
        "Ablation — in-situ time savings vs Lustre aggregate write bandwidth",
        "(8-hour cadence; the paper's rack is the 160 MB/s row)",
        f"{'bandwidth MB/s':>15s} {'time saving':>12s}",
    ]
    for bw, saving in rows:
        lines.append(f"{bw:>15d} {100 * saving:>11.1f}%")
    lines.append(
        "faster storage erodes the in-situ advantage: the paper's result is "
        "a statement about the 2016 compute/storage balance"
    )
    emit("ablation_bandwidth", lines)

    savings = [s for _, s in rows]
    # Paper balance point: roughly half the time saved.
    assert savings[0] == pytest.approx(0.51, abs=0.10)
    # Monotone erosion with faster storage, approaching the render-only gap.
    assert all(a >= b - 1e-9 for a, b in zip(savings, savings[1:]))
    assert savings[-1] < 0.15
