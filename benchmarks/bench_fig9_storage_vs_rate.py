"""Fig. 9 — storage vs sampling rate for a 100-simulated-year campaign.

The paper's takeaway: under a 2 TB per-user budget, post-processing is
forced down to one output every ~8 days, while in-situ sustains daily (or
finer) sampling with ease.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.units import years

#: The x-axis of Fig. 9, in simulated hours between outputs.
SWEEP_HOURS = (1.0, 4.0, 8.0, 24.0, 72.0, 192.0, 384.0)


def test_fig9_storage_vs_rate(study, benchmark):
    analyzer = study.analyzer()
    duration = years(paper.WHATIF_YEARS)

    rows = benchmark(
        lambda: analyzer.storage_vs_rate(
            intervals_hours=SWEEP_HOURS, duration_seconds=duration
        )
    )

    lines = [
        "Fig. 9 — storage vs sampling rate, 100-simulated-year campaign",
        f"{'cadence':>12s} {'in-situ GB':>12s} {'post GB':>12s}",
    ]
    for hours, insitu_gb, post_gb in rows:
        lines.append(f"{hours:>10.0f} h {insitu_gb:>12.1f} {post_gb:>12.1f}")
    post_limit = analyzer.finest_interval_for_storage(
        POST_PROCESSING, paper.WHATIF_STORAGE_BUDGET_GB, duration
    )
    insitu_limit = analyzer.finest_interval_for_storage(
        IN_SITU, paper.WHATIF_STORAGE_BUDGET_GB, duration
    )
    lines += [
        f"2 TB budget -> post-processing limited to every {post_limit / 24:.1f} days "
        f"(paper: ~{paper.WHATIF_POST_FORCED_INTERVAL_DAYS:.0f} days)",
        f"2 TB budget -> in-situ limited to every {insitu_limit:.2f} hours",
        "capacity context: the experimental rack stores 7.7 TB total",
    ]
    emit("fig9_storage_vs_rate", lines)

    assert post_limit / 24 == pytest.approx(
        paper.WHATIF_POST_FORCED_INTERVAL_DAYS, rel=0.25
    )
    assert insitu_limit <= 24.0
    # Storage scales inversely with the interval (Eq. 6).
    assert rows[0][2] / rows[3][2] == pytest.approx(24.0, rel=1e-6)
