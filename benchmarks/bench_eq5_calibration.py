"""Eq. 5 / Table II — calibrating the model from measured configurations.

The paper solves a 3x3 linear system over (in-situ @ 8 h, in-situ @ 72 h,
post @ 24 h) to obtain t_sim = 603 s, alpha ≈ 6.3 s/GB, beta ≈ 1.2 s/image.
Here the same solve runs over *our measured* grid, and additionally over the
paper's literal printed system.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.calibration import CalibrationPoint, calibrate_exact


def test_eq5_calibration_from_measurements(study, benchmark):
    points = study.training_points()

    result = benchmark(lambda: calibrate_exact(points, power_watts=study.average_power()))

    m = result.model
    lines = [
        "Eq. 5 — model calibration (3-point exact solve)",
        f"{'coefficient':>24s} {'measured':>10s} {'paper':>8s}",
        f"{'t_sim (s)':>24s} {m.t_sim_ref:>10.1f} {paper.EQ5_T_SIM:>8.0f}",
        f"{'alpha (s/GB)':>24s} {m.alpha:>10.2f} {paper.EQ5_ALPHA_S_PER_GB:>8.1f}",
        f"{'beta (s/image)':>24s} {m.beta:>10.2f} {paper.EQ5_BETA_S_PER_IMAGE:>8.1f}",
        f"{'avg power (kW)':>24s} {m.power_watts / 1e3:>10.1f} {'~46':>8s}",
        f"condition number: {result.condition_number:.1f}",
    ]
    emit("eq5_calibration", lines)
    assert m.t_sim_ref == pytest.approx(paper.EQ5_T_SIM, rel=0.02)
    assert m.alpha == pytest.approx(paper.EQ5_ALPHA_S_PER_GB, rel=0.10)
    assert m.beta == pytest.approx(paper.EQ5_BETA_S_PER_IMAGE, rel=0.10)


def test_eq5_paper_printed_system(benchmark):
    """Solving the paper's literal printed system confirms the α/β swap."""
    points = [
        CalibrationPoint(s_io_gb=s, n_viz=n, total_time=t)
        for s, n, t in paper.EQ5_SYSTEM
    ]
    result = benchmark(lambda: calibrate_exact(points))
    # The printed solution says α=1.2, β=6.3, but the algebra gives the
    # transposed assignment (see DESIGN.md):
    assert result.model.alpha == pytest.approx(6.3, abs=0.25)
    assert result.model.beta == pytest.approx(1.2, abs=0.05)
    assert result.model.t_sim_ref == pytest.approx(603.0, abs=7.0)
