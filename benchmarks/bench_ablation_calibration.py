"""Ablation — calibration strategy under measurement noise.

The paper solves Eq. 5 exactly from three points ("alternatively, regression
techniques may be used").  This ablation quantifies that alternative: with
noisy measurements, how do the 3-point exact solve and an all-points
least-squares fit compare at recovering (t_sim, α, β)?
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.calibration import (
    CalibrationPoint,
    calibrate_exact,
    calibrate_least_squares,
)
from repro.core.model import PerformanceModel

NOISE_LEVELS = (0.0, 0.005, 0.01, 0.02, 0.05)
N_TRIALS = 200

TRUTH = PerformanceModel(
    t_sim_ref=paper.EQ5_T_SIM,
    iter_ref=paper.CAMPAIGN_TIMESTEPS,
    alpha=paper.EQ5_ALPHA_S_PER_GB,
    beta=paper.EQ5_BETA_S_PER_IMAGE,
)

#: The measured grid's workload descriptors: (S_io GB, N_viz).
GRID = ((0.6, 540), (0.2, 180), (0.1, 60), (230.0, 540), (80.0, 180), (27.0, 60))
EXACT_SUBSET = (2, 0, 4)  # in-situ@72h, in-situ@8h, post@24h — the paper's


def _alpha_errors(noise: float, rng: np.random.Generator) -> tuple[float, float]:
    """RMS relative α error of (exact 3-point, least-squares 6-point)."""
    exact_sq = ls_sq = 0.0
    n_ok = 0
    for _ in range(N_TRIALS):
        points = [
            CalibrationPoint(
                s_io_gb=s,
                n_viz=n,
                total_time=TRUTH.execution_time(TRUTH.iter_ref, s, n)
                * float(rng.normal(1.0, noise))
                if noise
                else TRUTH.execution_time(TRUTH.iter_ref, s, n),
            )
            for s, n in GRID
        ]
        try:
            exact = calibrate_exact([points[i] for i in EXACT_SUBSET])
            ls = calibrate_least_squares(points)
        except Exception:
            continue  # noise produced a negative coefficient; skip the trial
        exact_sq += (exact.model.alpha / TRUTH.alpha - 1.0) ** 2
        ls_sq += (ls.model.alpha / TRUTH.alpha - 1.0) ** 2
        n_ok += 1
    return float(np.sqrt(exact_sq / n_ok)), float(np.sqrt(ls_sq / n_ok))


def test_ablation_calibration_noise(benchmark):
    rng = np.random.default_rng(7)
    rows = [(noise, *_alpha_errors(noise, rng)) for noise in NOISE_LEVELS]

    benchmark(lambda: _alpha_errors(0.01, np.random.default_rng(0)))

    lines = [
        "Ablation — RMS relative error of alpha under measurement noise",
        f"{'noise sigma':>12s} {'exact 3-pt':>11s} {'lstsq 6-pt':>11s}",
    ]
    for noise, exact_err, ls_err in rows:
        lines.append(f"{noise:>12.3f} {100 * exact_err:>10.2f}% {100 * ls_err:>10.2f}%")
    lines.append(
        "noise-free, both are exact; under noise the 6-point regression is "
        "consistently more robust than the paper's 3-point solve"
    )
    emit("ablation_calibration", lines)

    # Noise-free: both exact.
    assert rows[0][1] == pytest.approx(0.0, abs=1e-9)
    assert rows[0][2] == pytest.approx(0.0, abs=1e-9)
    # Under nontrivial noise, least squares beats the exact 3-point solve.
    for noise, exact_err, ls_err in rows[2:]:
        assert ls_err < exact_err, f"at noise {noise}"
