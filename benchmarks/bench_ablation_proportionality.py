"""Ablation — when would Hypothesis 1 hold?

The paper disproves "in-situ reduces storage power" because the rack is only
1.3 % power-proportional.  This ablation sweeps the storage dynamic range:
with a perfectly proportional rack (idle -> 0 W), how much power *would*
in-situ save?  The answer quantifies how far real storage hardware is from
making the hypothesis true.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.events.engine import Simulator
from repro.exec.api import RunRequest
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy
from repro.storage.lustre import StorageCluster
from repro.storage.power import StoragePowerModel
from repro.units import MONTH
from repro.ocean.driver import MPASOceanConfig

#: Storage idle power as a fraction of its full-load power (1.0 = the
#: paper's rack; 0.0 = perfectly power-proportional storage).
IDLE_FRACTIONS = (1.0, 0.75, 0.5, 0.25, 0.0)


def _run_pair(idle_fraction: float):
    results = {}
    spec = PipelineSpec(
        ocean=MPASOceanConfig(duration_seconds=2 * MONTH),
        sampling=SamplingPolicy(8.0),
    )
    for pipeline in (InSituPipeline(), PostProcessingPipeline()):
        sim = Simulator()
        from repro.cluster.machine import caddy

        cluster = caddy(sim)
        # Keep the 29 W dynamic swing; scale only the idle floor.
        power_model = StoragePowerModel(
            idle_watts=idle_fraction * 2_273.0,
            full_load_watts=idle_fraction * 2_273.0 + (2_302.0 - 2_273.0),
        )
        storage = StorageCluster(sim, power_model=power_model)
        platform = SimulatedPlatform(cluster=cluster, storage=storage)
        run = pipeline.execute(RunRequest(spec=spec), platform=platform)
        results[pipeline.name] = run.measurement
    return results


def test_ablation_storage_proportionality(benchmark):
    rows = []
    for frac in IDLE_FRACTIONS:
        res = _run_pair(frac)
        insitu = res[IN_SITU].power_report.average_storage_power
        post = res[POST_PROCESSING].power_report.average_storage_power
        saving = 1.0 - insitu / post if post > 0 else 0.0
        rows.append((frac, insitu, post, saving))

    benchmark(lambda: _run_pair(1.0))

    lines = [
        "Ablation — storage power savings of in-situ vs rack proportionality",
        f"{'idle fraction':>14s} {'in-situ W':>10s} {'post W':>10s} {'saving':>8s}",
    ]
    for frac, insitu, post, saving in rows:
        lines.append(f"{frac:>14.2f} {insitu:>10.1f} {post:>10.1f} {100 * saving:>7.1f}%")
    lines.append(
        "paper rack (idle fraction 1.0): no measurable saving — Finding 2; "
        "a perfectly proportional rack would finally reward in-situ"
    )
    emit("ablation_storage_proportionality", lines)

    # Finding 2 at the paper's rack...
    assert rows[0][3] == pytest.approx(0.0, abs=0.01)
    # ...and a monotone trend toward real savings as idle power vanishes.
    savings = [r[3] for r in rows]
    assert savings[-1] > 0.5
    assert savings == sorted(savings)
