"""Fig. 7 — storage requirements of both pipelines at 8/24/72 h.

Raw netCDF: 230 / 80 / 27 GB; Cinema image databases: <1 GB — a >=99.5 %
reduction at every cadence.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.io.ncformat import nclite_nbytes
from repro.ocean.driver import MiniOceanDriver


def test_fig7_storage(study, benchmark):
    lines = [
        "Fig. 7 — storage committed (GB)",
        f"{'cadence':>10s} {'in-situ':>9s} {'post':>9s} {'reduction':>10s} {'paper post':>11s}",
    ]
    reductions = benchmark(
        lambda: {h: study.metrics.storage_savings(h) for h in paper.SAMPLING_INTERVALS_HOURS}
    )
    for hours in paper.SAMPLING_INTERVALS_HOURS:
        insitu = study.metrics.get(IN_SITU, hours).storage_gb
        post = study.metrics.get(POST_PROCESSING, hours).storage_gb
        red = reductions[hours]
        lines.append(
            f"{hours:>8.0f} h {insitu:>9.2f} {post:>9.1f} {100 * red:>9.2f}% "
            f"{paper.POST_STORAGE_GB[hours]:>10.0f}"
        )
        assert post == pytest.approx(paper.POST_STORAGE_GB[hours], rel=0.15)
        assert insitu < paper.INSITU_STORAGE_GB_MAX
        assert red > paper.STORAGE_REDUCTION_MIN
    emit("fig7_storage", lines)


def test_fig7_outputs_counted(study, benchmark):
    benchmark(study.metrics.sample_intervals)
    for hours, n in paper.N_OUTPUTS.items():
        for pipeline in (IN_SITU, POST_PROCESSING):
            assert study.metrics.get(pipeline, hours).n_outputs == n


def test_fig7_raw_sample_serialization_cost(benchmark):
    """Cost of sizing one raw output sample (the netCDF-lite hot path)."""
    driver = MiniOceanDriver(nx=128, ny=64, seed=0)
    driver.advance(5)
    fields = driver.output_fields()

    nbytes = benchmark(lambda: nclite_nbytes(fields))

    assert nbytes > 8 * len(fields) * 128 * 64
