"""Fig. 2 — the Okubo-Weiss visualization of eddies.

Regenerates a Fig. 2-style frame from the real mini ocean model: green
rotation-dominated eddy cores outlined at the -0.2 sigma level, blue
shear-dominated filaments.  The benchmark measures one full
field -> colormap -> contour -> PNG render.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.ocean.driver import MiniOceanDriver
from repro.ocean.eddies import detect_eddies
from repro.ocean.okubo_weiss import okubo_weiss_classification
from repro.viz.render import render_okubo_weiss


@pytest.fixture(scope="module")
def ocean():
    driver = MiniOceanDriver(nx=128, ny=64, seed=3)
    driver.advance(40)
    return driver


def test_fig2_render(benchmark, ocean):
    w = ocean.okubo_weiss_field()

    image = benchmark(lambda: render_okubo_weiss(w, width=640, height=320))

    png = image.encode_png()
    eddies = detect_eddies(w, vorticity=ocean.solver.vorticity())
    cls = okubo_weiss_classification(w)
    emit(
        "fig2_okubo_weiss",
        [
            "Fig. 2 — Okubo-Weiss visualization (mini ocean stand-in for MPAS-O)",
            f"frame: 640x320, PNG {len(png) / 1e3:.0f} kB",
            f"rotation-dominated cells (green): {100 * (cls == -1).mean():.1f}%",
            f"shear-dominated cells (blue):     {100 * (cls == 1).mean():.1f}%",
            f"eddies detected at -0.2 sigma:    {len(eddies)}"
            f" (deepest W = {eddies[0].min_w:.3e} 1/s^2)",
        ],
    )
    # The frame must actually show both regimes of the paper's palette.
    px = image.pixels.astype(int)
    assert ((px[:, :, 1] > px[:, :, 0] + 20) & (px[:, :, 1] > px[:, :, 2] + 20)).any()
    assert ((px[:, :, 2] > px[:, :, 0] + 20) & (px[:, :, 2] > px[:, :, 1] + 20)).any()


def test_fig2_eddy_detection_speed(benchmark, ocean):
    w = ocean.okubo_weiss_field()
    zeta = ocean.solver.vorticity()

    eddies = benchmark(lambda: detect_eddies(w, vorticity=zeta))

    assert len(eddies) > 3
    assert np.all([e.min_w < 0 for e in eddies])
