"""Fig. 4 — the 1-minute power profile of a post-processing run.

Regenerates the compute and storage PDU traces for the 8-hour-cadence
post-processing pipeline (the configuration shown in the paper's Fig. 4)
and benchmarks the meter read-out path.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.metrics import POST_PROCESSING
from repro.exec.api import RunRequest
from repro.pipelines.base import PipelineSpec
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.pipelines.sampling import SamplingPolicy


@pytest.fixture(scope="module")
def profile_run():
    platform = SimulatedPlatform()
    run = PostProcessingPipeline().execute(
        RunRequest(spec=PipelineSpec(sampling=SamplingPolicy(8.0))),
        platform=platform,
    )
    return platform, run.measurement


def test_fig4_power_profile(profile_run, benchmark):
    _, m = profile_run
    report = benchmark(lambda: m.power_report)
    lines = [
        "Fig. 4 — power profile, post-processing @ 8 h (1-minute PDU samples)",
        f"{'minute':>7s} {'compute kW':>11s} {'storage W':>10s}",
    ]
    for i, (c, s) in enumerate(zip(report.compute.watts, report.storage.watts)):
        lines.append(f"{i:>7d} {c / 1e3:>11.2f} {s:>10.1f}")
    lines += [
        f"compute: avg {report.average_compute_power / 1e3:.1f} kW "
        f"(idle 15.0, loaded 44.0 — paper)",
        f"storage: avg {report.average_storage_power:.0f} W "
        f"(idle 2273, full 2302 — paper)",
    ]
    emit("fig4_power_profile", lines)
    # The profile must show visible compute modulation but near-flat storage.
    assert report.compute.watts.max() - report.compute.watts.min() > 1_000.0
    assert report.storage.watts.max() - report.storage.watts.min() < 40.0
    assert m.pipeline == POST_PROCESSING


def test_fig4_meter_readout_cost(benchmark, profile_run):
    platform, m = profile_run
    t1 = m.execution_time

    trace = benchmark(lambda: platform.cluster.read_total(0.0, t1))

    assert trace.n_samples >= 10
