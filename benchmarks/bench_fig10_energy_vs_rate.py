"""Fig. 10 — energy vs sampling rate for a 100-simulated-year campaign.

Paper callouts: in-situ saves 67.2 % of workflow energy at hourly sampling,
49 % at 12-hourly, 38 % at daily.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.units import joules_to_mwh, years

#: The x-axis of Fig. 10, in simulated hours between outputs.
SWEEP_HOURS = (1.0, 2.0, 4.0, 8.0, 12.0, 24.0, 48.0, 96.0)


def test_fig10_energy_vs_rate(study, benchmark):
    analyzer = study.analyzer()
    duration = years(paper.WHATIF_YEARS)

    rows = benchmark(
        lambda: analyzer.energy_vs_rate(
            intervals_hours=SWEEP_HOURS, duration_seconds=duration
        )
    )

    lines = [
        "Fig. 10 — energy vs sampling rate, 100-simulated-year campaign",
        f"{'cadence':>12s} {'in-situ MWh':>12s} {'post MWh':>12s} {'saving':>8s}",
    ]
    for hours, insitu_j, post_j in rows:
        saving = 1.0 - insitu_j / post_j
        lines.append(
            f"{hours:>10.0f} h {joules_to_mwh(insitu_j):>12.1f} "
            f"{joules_to_mwh(post_j):>12.1f} {100 * saving:>7.1f}%"
        )
    lines.append(
        "paper callouts: 67.2% @ 1 h, 49% @ 12 h, 38% @ 24 h"
    )
    emit("fig10_energy_vs_rate", lines)

    for hours, expected in paper.WHATIF_ENERGY_SAVINGS.items():
        got = analyzer.energy_savings(hours, duration)
        assert got == pytest.approx(expected, abs=0.05), f"at {hours} h"


def test_fig10_savings_monotone_in_rate(study, benchmark):
    """Finer sampling -> larger in-situ advantage (the Fig. 10 shape)."""
    analyzer = study.analyzer()
    duration = years(paper.WHATIF_YEARS)
    savings = benchmark(
        lambda: [analyzer.energy_savings(h, duration) for h in SWEEP_HOURS]
    )
    assert savings == sorted(savings, reverse=True)
