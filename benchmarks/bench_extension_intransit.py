"""Extension — the in-transit pipeline and staging-node placement.

The paper's related work (Rodero et al. [22]) asks "how best to distribute
the simulation and visualization tasks within a supercomputing cluster."
This bench answers it on the reproduced machine: sweep the staging-partition
size for in-transit processing at the paper's 24-hour cadence and locate the
placement that beats plain in-situ.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.core.metrics import IN_SITU
from repro.exec.api import RunRequest
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.intransit import InTransitPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.sampling import SamplingPolicy

STAGING_SIZES = (5, 10, 15, 30, 45, 60)


def _run_intransit(n_staging: int):
    request = RunRequest(spec=PipelineSpec(sampling=SamplingPolicy(24.0)))
    pipeline = InTransitPipeline(n_staging_nodes=n_staging)
    return pipeline.execute(request, platform=SimulatedPlatform()).measurement


def test_extension_intransit_placement(benchmark):
    insitu = InSituPipeline().execute(
        RunRequest(spec=PipelineSpec(sampling=SamplingPolicy(24.0))),
        platform=SimulatedPlatform(),
    ).measurement
    rows = [(n, _run_intransit(n)) for n in STAGING_SIZES]

    benchmark.pedantic(lambda: _run_intransit(15), rounds=2, iterations=1)

    lines = [
        "Extension — in-transit staging-partition placement (24 h cadence)",
        f"in-situ baseline: {insitu.execution_time:.0f} s at "
        f"{insitu.average_power / 1e3:.1f} kW",
        f"{'staging nodes':>14s} {'time s':>8s} {'stall s':>8s} {'power kW':>9s} "
        f"{'vs in-situ':>11s}",
    ]
    for n, m in rows:
        stall = m.timeline.total("stall") + m.timeline.total("drain")
        speedup = insitu.execution_time / m.execution_time
        lines.append(
            f"{n:>14d} {m.execution_time:>8.0f} {stall:>8.0f} "
            f"{m.average_power / 1e3:>9.1f} {speedup:>10.2f}x"
        )
    best_n, best = min(rows, key=lambda r: r[1].execution_time)
    lines += [
        f"best placement: {best_n} staging nodes ({best.execution_time:.0f} s)",
        "too few staging nodes -> render-bound (stall); too many -> the "
        "shrunken simulation partition dominates",
    ]
    emit("extension_intransit_placement", lines)

    times = [m.execution_time for _, m in rows]
    # The placement curve is U-shaped: the best interior point beats both ends.
    assert min(times) < times[0] and min(times) < times[-1]
    # A well-placed in-transit run beats in-situ (rendering off the critical path).
    assert best.execution_time < insitu.execution_time
    # Storage stays image-only, like in-situ.
    assert best.storage_bytes < 0.01 * 85e9
    assert insitu.pipeline == IN_SITU
