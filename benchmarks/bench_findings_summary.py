"""Section V-A — the "Summary of Findings" box, regenerated from data.

Also scores the Section II-C hypotheses: the paper disproved two of its
three initial hypotheses (H1 storage power, H3 trapped capacity) and
confirmed one (H2 energy); the reproduction must reach the same verdicts.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.core.hypotheses import evaluate_hypotheses, findings_summary


def test_findings_summary(study, benchmark):
    verdicts = benchmark(lambda: evaluate_hypotheses(study))

    lines = [findings_summary(study), ""]
    lines += [v.summary() for v in verdicts]
    lines += [
        "",
        "paper: 'our findings have disproved two of our initial hypotheses...'",
        "'The other hypothesis, however, holds true - in-situ techniques can",
        "reduce overall energy consumption.'",
    ]
    emit("findings_summary", lines)

    by_name = {v.hypothesis: v for v in verdicts}
    assert not by_name["H1"].supported  # storage power: refuted
    assert by_name["H2"].supported      # energy: confirmed
    assert not by_name["H3"].supported  # trapped capacity: refuted
