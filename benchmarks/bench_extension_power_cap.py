"""Extension — both pipelines on a power-limited machine.

The paper opens with the exascale power wall (the 20 MW cap) and "trapped
capacity", but its evaluation never runs *under* a cap.  This bench does:
a RAPL-style DVFS enforcer caps the reproduced machine at decreasing budgets
and the calibrated model predicts each pipeline's time and energy.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.cluster.power import e5_2670_node
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.power.capping import PowerCapEnforcer
from repro.units import joules_to_kwh

CAP_FRACTIONS = (1.0, 0.95, 0.9, 0.85, 0.8)


def test_extension_power_cap(study, benchmark):
    analyzer = study.analyzer()
    enforcer = PowerCapEnforcer(
        e5_2670_node(),
        n_nodes=150,
        overhead_watts=2_273.0,
    )
    top = enforcer.uncapped_watts()

    benchmark(lambda: enforcer.apply(analyzer.insitu, 24.0, 0.9 * top))

    lines = [
        "Extension — pipelines under a machine power cap (24 h cadence)",
        f"uncapped machine draw: {top / 1e3:.1f} kW",
        f"{'cap':>9s} {'freq':>6s} {'in-situ s':>10s} {'post s':>8s} "
        f"{'in-situ kWh':>12s} {'post kWh':>9s}",
    ]
    results = []
    for frac in CAP_FRACTIONS:
        cap = frac * top
        insitu = enforcer.apply(analyzer.insitu, 24.0, cap)
        post = enforcer.apply(analyzer.post, 24.0, cap)
        results.append((frac, insitu, post))
        lines.append(
            f"{100 * frac:>8.0f}% {insitu.frequency_ratio:>6.2f} "
            f"{insitu.execution_time:>10.0f} {post.execution_time:>8.0f} "
            f"{joules_to_kwh(insitu.energy):>12.1f} {joules_to_kwh(post.energy):>9.1f}"
        )
    lines += [
        "caps slow the compute-bound in-situ pipeline more in relative terms,",
        "but it keeps winning absolutely in both time and energy — the",
        "in-situ recommendation survives the power wall",
    ]
    emit("extension_power_cap", lines)

    for frac, insitu, post in results:
        assert insitu.execution_time < post.execution_time, f"cap {frac}"
        assert insitu.energy < post.energy, f"cap {frac}"
    # Frequency (and thus slowdown) responds monotonically to the cap.
    freqs = [r[1].frequency_ratio for r in results]
    assert freqs == sorted(freqs, reverse=True)
    # Relative slowdown is worse for the more compute-bound pipeline.
    _, insitu_tight, post_tight = results[-1]
    assert insitu_tight.slowdown > post_tight.slowdown
    assert insitu_tight.slowdown == pytest.approx(
        1.0 / insitu_tight.frequency_ratio, rel=0.05
    )
