"""Ablation — can compression rescue post-processing from the storage wall?

Fig. 9's conclusion ("post-processing is forced to one output per 8 days
under a 2 TB budget") assumes uncompressed raw output.  This ablation
measures, on real fields from the mini ocean, what bounded-error
quantization + shuffle/zlib actually buys — and re-derives the Fig. 9
storage limit with the measured ratio applied.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.metrics import POST_PROCESSING
from repro.io.compression import compress_field, compression_ratio, decompress_field
from repro.ocean.driver import MiniOceanDriver
from repro.units import years

#: Quantization precisions as fractions of each field's standard deviation.
PRECISIONS = (None, 1e-6, 1e-4, 1e-2)


def _measured_ratios(fields) -> list[tuple[object, float]]:
    rows = []
    for p in PRECISIONS:
        if p is None:
            rows.append(("lossless", compression_ratio(fields)))
        else:
            total_raw = sum(np.asarray(f).nbytes for f in fields.values())
            total = 0
            for f in fields.values():
                f = np.asarray(f, dtype=float)
                total += len(compress_field(f, precision=p * float(np.std(f)) + 1e-300))
            rows.append((f"{p:g} sigma", total / total_raw))
    return rows


def test_ablation_compression(study, benchmark):
    driver = MiniOceanDriver(nx=128, ny=64, seed=5)
    driver.advance(30)
    fields = driver.output_fields()

    rows = benchmark.pedantic(lambda: _measured_ratios(fields), rounds=1, iterations=1)

    analyzer = study.analyzer()
    duration = years(paper.WHATIF_YEARS)
    base_limit_days = (
        analyzer.finest_interval_for_storage(POST_PROCESSING, 2_000.0, duration) / 24
    )
    lines = [
        "Ablation — compression of post-processing output (real mini-ocean fields)",
        f"{'precision':>12s} {'ratio':>7s} {'Fig.9 limit @2TB':>17s}",
    ]
    for label, ratio in rows:
        # Eq. 6 is linear in volume: the storage-forced cadence scales with it.
        limit = base_limit_days * ratio
        lines.append(f"{label:>12s} {ratio:>7.3f} {limit:>13.2f} days")
    lines += [
        f"uncompressed limit: every {base_limit_days:.1f} days (paper: ~8)",
        "bounded-error quantization buys one cadence step or two, but cannot",
        "approach the in-situ pipeline's orders-of-magnitude reduction",
    ]
    emit("ablation_compression", lines)

    ratios = [r for _, r in rows]
    # Lossless shrinks modestly; ratios improve monotonically as precision coarsens.
    assert 0.5 < ratios[0] < 1.0
    assert ratios == sorted(ratios, reverse=True)
    # Even the coarsest (1e-2 sigma) stays far from in-situ's ~0.2 % footprint.
    assert ratios[-1] > 0.02

    # Round-trip error stays bounded at the tightest lossy level.
    w = np.asarray(fields["okubo_weiss"], dtype=float)
    p = 1e-6 * float(np.std(w))
    back = decompress_field(compress_field(w, precision=p))
    assert np.max(np.abs(back - w)) <= p / 2 + 1e-18
