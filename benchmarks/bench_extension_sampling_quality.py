"""Extension — eddy-tracking fidelity vs sampling rate, measured for real.

Section VII *assumes* a science requirement ("the output has to be written
once per simulated day (or even hour)" to track eddies).  This bench
measures it: the real mini ocean runs once at full temporal resolution and
the tracker is evaluated on progressively coarser subsets of the same
detections.  The frame-to-frame link rate is the empirical cost of coarse
sampling — the quantity that justifies Fig. 9's x-axis.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.quality import evaluate_sampling_quality, quality_table

STRIDES = (1, 2, 4, 8, 16, 32)


def test_extension_sampling_quality(benchmark):
    results = benchmark.pedantic(
        lambda: evaluate_sampling_quality(strides=STRIDES, n_steps=96),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Extension — eddy-tracking fidelity vs output cadence (real mini ocean)",
        quality_table(results),
        "link rate = probability an eddy is re-identified in the next output;",
        "it decays monotonically as outputs are spaced farther apart —",
        "the measured version of the paper's 'once per day (or even hour)'",
        "tracking requirement.",
    ]
    emit("extension_sampling_quality", lines)

    rates = [q.link_rate for q in results]
    # Fidelity is high at the native cadence and degrades monotonically
    # (within a small tolerance for detection noise).
    assert rates[0] > 0.9
    for a, b in zip(rates, rates[1:]):
        assert b <= a + 0.03
    assert rates[-1] < rates[0]
    # The same eddies are seen at every cadence (sampling, not re-running).
    counts = [q.eddies_per_frame for q in results]
    assert max(counts) - min(counts) < 0.1 * max(counts)
