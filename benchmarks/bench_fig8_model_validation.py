"""Fig. 8 — model validation on held-out configurations.

White squares (training): in-situ @ 8 h, in-situ @ 72 h, post @ 24 h.
Black triangles (evaluation): the other three grid cells.  The paper reports
<0.5 % absolute error; the reproduction must hold that bound too.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro import paper


def test_fig8_model_validation(study, benchmark):
    calibration = study.calibrate()

    rows = benchmark(lambda: calibration.validate(study.holdout_points()))

    lines = [
        "Fig. 8 — modeled vs measured execution time",
        f"{'configuration':>28s} {'measured s':>11s} {'model s':>9s} {'error':>8s}",
    ]
    for point, predicted, rel in rows:
        lines.append(
            f"{point.label:>28s} {point.total_time:>11.1f} {predicted:>9.1f} "
            f"{100 * rel:>+7.2f}%"
        )
        assert abs(rel) < paper.MODEL_MAX_ERROR, point.label
    for point, residual in zip(calibration.points, calibration.residuals):
        lines.append(
            f"{point.label + ' (train)':>28s} {point.total_time:>11.1f} "
            f"{point.total_time + residual:>9.1f} "
            f"{100 * residual / point.total_time:>+7.2f}%"
        )
    lines.append(f"paper bound: |error| < {100 * paper.MODEL_MAX_ERROR:.1f}%")
    emit("fig8_model_validation", lines)
    assert len(rows) == 3
