"""Fig. 3 — execution time of in-situ vs post-processing at 8/24/72 h.

Prints the measured grid next to the paper's reported savings and
benchmarks one full campaign-scale in-situ run on the DES platform.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.exec.api import RunRequest
from repro.pipelines.base import PipelineSpec
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import SimulatedPlatform
from repro.pipelines.sampling import SamplingPolicy


def test_fig3_execution_time(study, benchmark):
    lines = [
        "Fig. 3 — execution time (seconds), 6-simulated-month campaign",
        f"{'cadence':>10s} {'in-situ':>10s} {'post':>10s} {'saving':>8s} {'paper':>8s}",
    ]
    savings = benchmark(
        lambda: {h: study.metrics.time_savings(h) for h in paper.SAMPLING_INTERVALS_HOURS}
    )
    for hours in paper.SAMPLING_INTERVALS_HOURS:
        insitu = study.metrics.get(IN_SITU, hours)
        post = study.metrics.get(POST_PROCESSING, hours)
        saving = savings[hours]
        lines.append(
            f"{hours:>8.0f} h {insitu.execution_time:>10.0f} {post.execution_time:>10.0f} "
            f"{100 * saving:>7.0f}% {100 * paper.TIME_SAVINGS[hours]:>7.0f}%"
        )
        assert saving == pytest.approx(paper.TIME_SAVINGS[hours], abs=0.07)
    emit("fig3_execution_time", lines)


def test_fig3_insitu_run_cost(benchmark):
    """Wall cost of one full 540-sample in-situ campaign on the simulator."""
    spec = PipelineSpec(sampling=SamplingPolicy(8.0))

    def run():
        return InSituPipeline().execute(
            RunRequest(spec=spec), platform=SimulatedPlatform()
        ).measurement

    m = benchmark.pedantic(run, rounds=3, iterations=1)
    assert m.n_outputs == 540
