"""Section V (text) — power proportionality of storage vs compute.

The measurement behind Findings 2 and 3: the storage rack swings only
2273 -> 2302 W from idle to full load (1.3 %), while the compute cluster
swings 15 -> 44 kW (193 %).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.cluster.power import e5_2670_node
from repro.core.characterization import storage_power_sweep
from repro.storage.power import StoragePowerModel

LOAD_FRACTIONS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def test_storage_power_proportionality(benchmark):
    rows = benchmark(lambda: storage_power_sweep(fractions=LOAD_FRACTIONS))

    lines = [
        "Section V — storage rack power vs I/O load",
        f"{'throughput MB/s':>16s} {'watts':>8s}",
    ]
    for throughput, watts in rows:
        lines.append(f"{throughput / 1e6:>16.0f} {watts:>8.1f}")
    idle, full = rows[0][1], rows[-1][1]
    lines += [
        f"idle {idle:.0f} W -> full {full:.0f} W: +{100 * (full / idle - 1):.1f}% "
        f"(paper: +1.3%)",
    ]
    emit("storage_power_proportionality", lines)
    assert idle == pytest.approx(paper.STORAGE_IDLE_W)
    assert full == pytest.approx(paper.STORAGE_FULL_W)


def test_compute_power_proportionality(benchmark):
    node = e5_2670_node()
    benchmark(lambda: [node.power(u) for u in LOAD_FRACTIONS])
    lines = [
        "Section V — compute cluster power vs utilization (150 nodes)",
        f"{'utilization':>12s} {'cluster kW':>11s}",
    ]
    for util in LOAD_FRACTIONS:
        lines.append(f"{util:>12.2f} {150 * node.power(util) / 1e3:>11.1f}")
    idle = 150 * node.idle_watts
    full = 150 * node.peak_watts
    lines.append(
        f"idle {idle / 1e3:.0f} kW -> loaded {full / 1e3:.0f} kW: "
        f"+{100 * (full / idle - 1):.0f}% (paper: +193%)"
    )
    emit("compute_power_proportionality", lines)
    assert idle == pytest.approx(paper.COMPUTE_IDLE_W)
    assert full == pytest.approx(paper.COMPUTE_LOADED_W, rel=1e-4)
    assert full / idle - 1.0 == pytest.approx(paper.COMPUTE_DYNAMIC_RANGE, abs=0.01)


def test_why_insitu_saves_no_power(study, benchmark):
    """Finding 2's mechanism, quantified from the measured grid.

    The storage dynamic range (29 W) is invisible against the ~43 kW total:
    even zeroing storage I/O entirely could save at most 0.07 % power.
    """
    model = StoragePowerModel()
    total_power = benchmark(study.average_power)
    bound = model.dynamic_watts / total_power
    assert bound < 0.001
