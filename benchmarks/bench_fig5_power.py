"""Fig. 5 — average total power of both pipelines at 8/24/72 h.

The paper's surprise result: "there is practically no difference in the
power consumed by the various pipelines studied."
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import paper
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.power.trace import PowerTrace


def test_fig5_average_power(study, benchmark):
    lines = [
        "Fig. 5 — average power (kW), compute + storage",
        f"{'cadence':>10s} {'in-situ':>9s} {'post':>9s} {'delta':>7s}",
    ]
    deltas = benchmark(
        lambda: {h: study.metrics.power_change(h) for h in paper.SAMPLING_INTERVALS_HOURS}
    )
    for hours in paper.SAMPLING_INTERVALS_HOURS:
        insitu = study.metrics.get(IN_SITU, hours).average_power
        post = study.metrics.get(POST_PROCESSING, hours).average_power
        delta = deltas[hours]
        lines.append(
            f"{hours:>8.0f} h {insitu / 1e3:>9.1f} {post / 1e3:>9.1f} {100 * delta:>+6.1f}%"
        )
        # Finding 3: practically no difference (we allow 5 %).
        assert abs(delta) < 0.05
    lines.append("paper: 'practically no difference in the power consumed'")
    emit("fig5_power", lines)


def test_fig5_trace_summation_cost(benchmark, study):
    """Cost of combining the 15 cage traces + PDU into total power."""
    m = study.metrics.get(IN_SITU, 24.0)
    compute, storage = m.power_report.compute, m.power_report.storage

    total = benchmark(lambda: (compute + storage).average_power())

    assert total == pytest.approx(m.average_power, rel=1e-9)


def test_fig5_power_is_flat_across_cadences(study, benchmark):
    """Within one pipeline, cadence barely moves average power."""
    benchmark(study.average_power)
    for pipeline in (IN_SITU, POST_PROCESSING):
        powers = [
            study.metrics.get(pipeline, h).average_power
            for h in paper.SAMPLING_INTERVALS_HOURS
        ]
        spread = max(powers) / min(powers) - 1.0
        assert spread < 0.06, f"{pipeline}: {spread:.3f}"
