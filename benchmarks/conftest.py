"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper and
emits its rows twice: to stdout (visible with ``pytest -s``) and to a text
file under ``benchmarks/results/`` so the artifact survives output capture.
"""

from __future__ import annotations

import os

import pytest

from repro.core.characterization import CharacterizationStudy, run_characterization

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, lines: list[str]) -> None:
    """Print a result table and persist it under ``benchmarks/results/``."""
    text = "\n".join(lines)
    print(f"\n===== {name} =====\n{text}")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def study() -> CharacterizationStudy:
    """The full Section V experiment grid, shared by every benchmark."""
    return run_characterization()


def pytest_collection_modifyitems(items):
    """Run figure benches in paper order (fig2, fig3, ... then ablations)."""
    items.sort(key=lambda item: item.fspath.basename)
