#!/usr/bin/env python
"""Why eddies matter: passive-tracer stirring, rendered in situ.

Climate scientists track eddies because they transport heat and salt.  This
example advects a passive tracer (a meridional gradient, think temperature)
with the mini ocean's flow, rendering both the tracer and the Okubo-Weiss
field side by side into a Cinema database — eddy cores visibly roll the
gradient into filaments, which is the physical content behind the paper's
visualization task.

Usage::

    python examples/tracer_stirring.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.ocean.barotropic import BarotropicSolver
from repro.ocean.diagnostics import SimulationMonitor
from repro.ocean.grid import SpectralGrid
from repro.ocean.tracer import TracerField
from repro.viz.annotate import annotate_frame
from repro.viz.cinema import CinemaDatabase
from repro.viz.colormap import ocean_speed_colormap
from repro.viz.render import render_field, render_okubo_weiss
from repro.ocean.okubo_weiss import okubo_weiss

N_FRAMES = 8
STEPS_PER_FRAME = 12


def main(output_dir: str) -> None:
    grid = SpectralGrid(128, 128)
    flow = BarotropicSolver(grid, viscosity=5e7, seed=21)
    tracer = TracerField(flow, diffusivity=5.0, name="temperature")
    monitor = SimulationMonitor()
    cinema = CinemaDatabase(output_dir, name="tracer-stirring")
    cmap = ocean_speed_colormap()

    print(f"{grid.nx}x{grid.ny} domain, tracer variance at start: "
          f"{tracer.variance():.4f}")
    for frame in range(N_FRAMES):
        tracer.run_with_flow(STEPS_PER_FRAME, 1_800.0)
        health = monitor.check(flow, 1_800.0)
        if not health.healthy:
            print(f"ABORTING: {health.reason}")  # the §II-B monitoring use case
            break
        day = flow.time / 86_400.0
        c = tracer.concentration()
        tr_img = render_field(c, cmap, width=384, height=384, vmin=0.0, vmax=1.0)
        annotate_frame(tr_img, f"TRACER DAY {day:.1f}", scale=2)
        cinema.add_image({"field": "tracer", "time": frame}, tr_img)
        u, v = flow.velocity()
        w = okubo_weiss(u, v, grid.dx, grid.dy)
        ow_img = render_okubo_weiss(w, width=384, height=384)
        annotate_frame(ow_img, f"OKUBO-WEISS DAY {day:.1f}", scale=2)
        cinema.add_image({"field": "okubo_weiss", "time": frame}, ow_img)
        print(
            f"  day {day:5.1f}: variance {tracer.variance():.4f}, "
            f"mean |grad c| {tracer.gradient_magnitude().mean():.2e}, "
            f"KE {flow.kinetic_energy():.3f}"
        )
    cinema.close()
    print(f"\ntracer mean drifted by "
          f"{abs(tracer.mean() - 0.5):.2e} (conserved)")
    print(f"Cinema database: {len(cinema)} frames, "
          f"{cinema.total_bytes / 1e6:.1f} MB -> {output_dir}")


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="tracer-")
    main(target)
