#!/usr/bin/env python
"""Campaign planner: the Section VII "automated framework".

"We envision our model being used in an automated framework to decide the
sampling rate and the pipeline automatically depending on a given set of
constraints."  This example is that framework: it characterizes the machine,
calibrates the model, then plans a 100-simulated-year eddy-tracking campaign
under storage, energy and time budgets.

Usage::

    python examples/campaign_planner.py
"""

from __future__ import annotations

from repro import run_characterization
from repro.core.advisor import Constraints, PipelineAdvisor
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.units import format_energy, format_seconds, kwh_to_joules, years


def main() -> None:
    print("Step 1 — characterize the machine (one short run per configuration)")
    study = run_characterization()
    print(study.findings())

    print("\nStep 2 — calibrate the performance/energy/storage model")
    analyzer = study.analyzer()
    model = analyzer.insitu.model
    print(
        f"  t_sim={model.t_sim_ref:.0f} s, alpha={model.alpha:.2f} s/GB, "
        f"beta={model.beta:.2f} s/image, P={model.power_watts / 1e3:.1f} kW"
    )

    print("\nStep 3 — plan the campaign")
    advisor = PipelineAdvisor(analyzer)
    century = years(100)
    scenarios = [
        (
            "track eddies daily, 2 TB storage",
            Constraints(
                duration_seconds=century,
                storage_budget_gb=2_000.0,
                required_interval_hours=24.0,
            ),
        ),
        (
            "track eddies hourly, 2 TB storage",
            Constraints(
                duration_seconds=century,
                storage_budget_gb=2_000.0,
                required_interval_hours=1.0,
            ),
        ),
        (
            "daily tracking under a 40 MWh energy budget",
            Constraints(
                duration_seconds=century,
                energy_budget_joules=kwh_to_joules(40_000.0),
                required_interval_hours=24.0,
            ),
        ),
        (
            "whatever fits in 16 TB with no science requirement",
            Constraints(duration_seconds=century, storage_budget_gb=16_000.0),
        ),
    ]
    for title, constraints in scenarios:
        print(f"\n  scenario: {title}")
        for pipeline in (IN_SITU, POST_PROCESSING):
            rec = advisor.evaluate(pipeline, constraints)
            print(f"    {rec.summary()}")
        best = advisor.recommend(constraints)
        pred = best.prediction
        print(
            f"    => recommended: {best.pipeline} every {best.interval_hours:g} h — "
            f"{format_seconds(pred.execution_time)} machine time, "
            f"{format_energy(pred.energy)}, {pred.s_io_gb:,.0f} GB stored"
        )


if __name__ == "__main__":
    main()
