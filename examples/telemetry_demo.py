#!/usr/bin/env python
"""Telemetry demo: record, export and summarize one instrumented run.

Activates a :func:`repro.obs.session` around a small characterization grid
(one month of simulated ocean, 72-hour sampling, both pipelines), then
shows the three artifacts the session leaves behind:

* ``events.jsonl``  — the span/phase/event stream (one JSON object per line);
* ``metrics.prom``  — Prometheus text exposition of every metric family;
* ``manifest.json`` — the run manifest (config, durations, provenance).

Equivalent CLI::

    python -m repro characterize --intervals 72 --telemetry out/telemetry
    python -m repro obs summarize out/telemetry

Usage::

    python examples/telemetry_demo.py [output-directory]
"""

from __future__ import annotations

import os
import sys

from repro import obs, run_characterization
from repro.obs.cli import summarize
from repro.ocean.driver import MPASOceanConfig
from repro.pipelines.base import PipelineSpec
from repro.units import MONTH


def main() -> None:
    directory = sys.argv[1] if len(sys.argv) > 1 else "out/telemetry"
    spec = PipelineSpec(ocean=MPASOceanConfig(duration_seconds=MONTH))

    print(f"recording telemetry under {directory}/ ...")
    with obs.session(directory, label="telemetry-demo", argv=sys.argv[1:]) as sess:
        with obs.span("demo.grid", intervals=1):
            study = run_characterization(intervals_hours=(72.0,), spec=spec)
        obs.event("grid-complete", n_measurements=len(study.metrics))
        print(f"recorded {sess.n_events} events, "
              f"{len(sess.registry.snapshot())} metric families")

    print("\n--- repro obs summarize ---")
    print(summarize(directory))

    print("\n--- first lines of the event stream ---")
    events_path = os.path.join(directory, obs.EVENTS_FILENAME)
    with open(events_path, encoding="utf-8") as fh:
        for line in list(fh)[:5]:
            print(line.rstrip())


if __name__ == "__main__":
    main()
