#!/usr/bin/env python
"""Run both Fig. 1 pipelines *for real* at miniature scale.

Unlike the quickstart (which runs the campaign-scale discrete-event
simulation), this example executes the actual code paths end to end on your
machine: the barotropic ocean solver produces real fields, the
post-processing pipeline writes real nclite files and reads them back, the
in-situ pipeline renders real PNGs through the Catalyst adaptor into a
Cinema database — all wall-clock timed.

Usage::

    python examples/real_pipeline_comparison.py [workdir]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.exec.api import RunRequest
from repro.pipelines.insitu import InSituPipeline
from repro.pipelines.platform import RealPlatform, RealScale
from repro.pipelines.postprocessing import PostProcessingPipeline
from repro.units import format_bytes, format_seconds


def main(workdir: str) -> None:
    scale = RealScale(
        nx=128,
        ny=64,
        n_steps=48,
        steps_between_outputs=8,
        image_width=384,
        image_height=192,
        spinup_steps=30,
    )
    platform = RealPlatform(workdir, scale=scale)
    print(
        f"mini campaign: {scale.n_steps} timesteps on a {scale.nx}x{scale.ny} "
        f"grid, one output every {scale.steps_between_outputs} steps "
        f"({scale.n_outputs} outputs)"
    )

    results = {}
    for pipeline in (PostProcessingPipeline(), InSituPipeline()):
        print(f"\nrunning {pipeline.name} ...")
        m = pipeline.execute(
            RunRequest(mode="real"), platform=platform
        ).measurement
        results[pipeline.name] = m
        phases = m.timeline.by_phase()
        print(f"  wall time : {format_seconds(m.execution_time)}")
        for phase, seconds in phases.items():
            print(f"    {phase:<11s}: {format_seconds(seconds)} "
                  f"({100 * seconds / m.execution_time:.0f}%)")
        print(f"  storage   : {format_bytes(m.storage_bytes)} "
              f"in {m.n_outputs} outputs / {m.n_images} images")
        print(f"  artifacts : {m.label}")

    post = results["post-processing"]
    insitu = results["in-situ"]
    print("\ncomparison (mini scale):")
    print(f"  storage reduction : "
          f"{100 * (1 - insitu.storage_bytes / post.storage_bytes):.1f}% "
          f"(paper, campaign scale: >99.5%)")
    print(f"  time ratio        : {insitu.execution_time / post.execution_time:.2f}x")
    print("\nNote: at laptop scale there is no 160 MB/s Lustre bottleneck, so")
    print("the paper's dramatic *time* savings do not appear here — that is")
    print("exactly why the campaign-scale platform simulates the storage rack.")
    print(f"\nartifacts kept under: {workdir}")
    for entry in sorted(os.listdir(workdir)):
        print(f"  {entry}/")


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="pipelines-")
    main(target)
