#!/usr/bin/env python
"""Eddy tracking: the paper's visualization task, on the real mini ocean.

Spins up the barotropic mini ocean model, runs it forward while an in-situ
Catalyst adaptor renders the Okubo-Weiss field into a Cinema image database
(real PNG files), detects eddy cores at the -0.2 sigma threshold each output
step and links them into tracks — "eddies exist for hundreds of days while
traveling hundreds of kilometers" (Section VII).

Usage::

    python examples/eddy_tracking.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.ocean.driver import MiniOceanDriver
from repro.ocean.eddies import detect_eddies, track_eddies
from repro.viz.annotate import annotate_frame
from repro.viz.catalyst import CatalystAdaptor
from repro.viz.cinema import CinemaDatabase
from repro.viz.render import render_okubo_weiss

N_FRAMES = 12
STEPS_BETWEEN_FRAMES = 8


def main(output_dir: str) -> None:
    driver = MiniOceanDriver(nx=192, ny=96, seed=42)
    print(f"mini ocean: {driver.grid.nx}x{driver.grid.ny} cells, "
          f"{driver.grid.length_m / 1e3:.0f} km domain")
    print("spinning up 40 timesteps...")
    driver.advance(40)

    cinema = CinemaDatabase(output_dir, name="eddy-tracking")
    adaptor = CatalystAdaptor()
    detections: list[list] = []

    def coprocess(step: int, sim_time: float, fields) -> int:
        w = np.asarray(fields["okubo_weiss"])
        image = render_okubo_weiss(w, width=576, height=288)
        annotate_frame(image, f"DAY {sim_time / 86_400:.1f}", scale=2)
        cinema.add_image({"time": step}, image)
        eddies = detect_eddies(w, vorticity=fields["vorticity"], frame=step)
        detections.append(eddies)
        return len(eddies)

    adaptor.register_pipeline("eddies", coprocess)

    print(f"running {N_FRAMES} output frames "
          f"({STEPS_BETWEEN_FRAMES} timesteps = {STEPS_BETWEEN_FRAMES / 2:.0f} "
          f"simulated hours apart)...")
    for frame in range(N_FRAMES):
        driver.advance(STEPS_BETWEEN_FRAMES)
        counts = adaptor.coprocess(frame, driver.time, driver.output_fields())
        cyclones = sum(1 for e in detections[-1] if e.rotation_sign > 0)
        print(
            f"  frame {frame:2d} (day {driver.time / 86_400:5.1f}): "
            f"{counts['eddies']:3d} eddies "
            f"({cyclones} cyclonic, {counts['eddies'] - cyclones} anticyclonic)"
        )
    adaptor.finalize()
    cinema.close()

    tracks = track_eddies(
        detections, max_distance_cells=8.0, shape=driver.grid.shape
    )
    long_lived = [t for t in tracks if t.lifetime_frames >= N_FRAMES // 2]
    km_per_cell = driver.grid.dx / 1e3
    print(f"\ntracking: {len(tracks)} tracks, {len(long_lived)} persisted "
          f">= {N_FRAMES // 2} frames")
    for i, track in enumerate(
        sorted(long_lived, key=lambda t: -t.lifetime_frames)[:5]
    ):
        travel = track.path_length(shape=driver.grid.shape) * km_per_cell
        print(
            f"  track {i}: frames {track.birth_frame}-{track.death_frame}, "
            f"travelled {travel:.0f} km, "
            f"mean core {np.mean([e.area_cells for e in track.eddies]):.0f} cells"
        )
    print(f"\nCinema database: {len(cinema)} PNG frames, "
          f"{cinema.total_bytes / 1e6:.1f} MB -> {output_dir}")
    print(f"adaptor copied {adaptor.bytes_copied / 1e6:.1f} MB of simulation "
          f"state across {adaptor.coprocess_count} co-processing steps")


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="eddies-")
    main(target)
