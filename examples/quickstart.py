#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline results in one minute.

Runs the full Section V experiment grid (both pipelines × 8/24/72-hour
sampling) on the simulated 150-node cluster + Lustre rack, calibrates the
Section VI model from three configurations, validates it on the held-out
three, and answers the Section VII what-if questions.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import run_characterization
from repro.core.metrics import IN_SITU, POST_PROCESSING
from repro.units import format_bytes, years


def main() -> None:
    print("Running the characterization grid (6 campaign-scale runs)...")
    study = run_characterization()

    print("\n=== Section V: measurements ===")
    print(study.table())
    print()
    print(study.findings())

    print("\n=== Section VI: model calibration (Eq. 5) ===")
    result = study.calibrate()
    model = result.model
    print(f"t_sim = {model.t_sim_ref:.0f} s   (paper: 603 s)")
    print(f"alpha = {model.alpha:.2f} s/GB (paper: 6.3 s/GB)")
    print(f"beta  = {model.beta:.2f} s/image (paper: 1.2 s/image)")
    print("held-out validation (paper: <0.5% error):")
    for point, predicted, rel in study.validate():
        print(
            f"  {point.label:24s} measured {point.total_time:7.1f} s   "
            f"model {predicted:7.1f} s   error {100 * rel:+.2f}%"
        )

    print("\n=== Section VII: what-if analysis, 100-simulated-year campaign ===")
    analyzer = study.analyzer()
    century = years(100)
    post_limit = analyzer.finest_interval_for_storage(POST_PROCESSING, 2_000.0, century)
    insitu_limit = analyzer.finest_interval_for_storage(IN_SITU, 2_000.0, century)
    print(
        f"2 TB storage budget: post-processing limited to one output every "
        f"{post_limit / 24:.1f} days (paper: ~8 days);"
    )
    print(
        f"                     in-situ sustains one output every "
        f"{insitu_limit:.2f} hours."
    )
    for hours in (1.0, 12.0, 24.0):
        saving = analyzer.energy_savings(hours, century)
        print(f"energy saved by in-situ at {hours:4.0f}-hour sampling: {100 * saving:.1f}%")
    row = analyzer.sweep(intervals_hours=[24.0], duration_seconds=century)[0]
    print(
        f"daily sampling for a century: post writes {format_bytes(row.post.storage_bytes)}, "
        f"in-situ writes {format_bytes(row.insitu.storage_bytes)}"
    )


if __name__ == "__main__":
    main()
