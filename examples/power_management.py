#!/usr/bin/env python
"""Section VIII in practice: where the remaining power/energy hides.

The paper's discussion section identifies two improvement areas — storage
energy proportionality and compute I/O-wait management — and the related
work suggests a third workflow (in-transit staging).  This example measures
all three on the reproduced machine:

1. idle-period management of the compute cluster's I/O waits,
2. a DVFS governor and a "wimpy CPU" redesign for the storage rack,
3. the in-transit pipeline with a swept staging-partition size.

Usage::

    python examples/power_management.py
"""

from __future__ import annotations

from repro.cluster.power import e5_2670_node
from repro.core.metrics import POST_PROCESSING
from repro.core.characterization import run_characterization
from repro.exec.api import RunRequest
from repro.pipelines import (
    InSituPipeline,
    InTransitPipeline,
    PipelineSpec,
    SamplingPolicy,
)
from repro.power.states import IdlePeriodManager
from repro.storage.governor import StorageDvfsGovernor, wimpy_storage_model
from repro.storage.power import StoragePowerModel
from repro.units import joules_to_kwh


def main() -> None:
    print("=== 1. Compute-side idle-period management ===")
    study = run_characterization(intervals_hours=(8.0,))
    post = study.metrics.get(POST_PROCESSING, 8.0)
    manager = IdlePeriodManager(e5_2670_node(), n_nodes=150)
    waits = manager.wait_intervals(post.timeline)
    print(
        f"post-processing @ 8 h: {len(waits)} wait intervals totalling "
        f"{sum(waits):.0f} s (median {sorted(waits)[len(waits) // 2]:.2f} s) "
        f"in a {post.execution_time:.0f} s run"
    )
    for savings in manager.analyze(post.timeline):
        print(
            f"  {savings.state.name:<11s} (floor {savings.state.min_interval_seconds:g} s): "
            f"manages {savings.n_managed}/{savings.n_intervals} waits, saves "
            f"{joules_to_kwh(savings.energy_saved_joules):.1f} kWh "
            f"({100 * savings.savings_fraction(post.energy):.1f}% of the run) "
            f"for {savings.time_penalty_seconds:.2f} s of transitions"
        )
    print("  -> today's prolonged-idleness techniques recover nothing;")
    print("     millisecond-scale states unlock the short I/O waits (the")
    print("     paper's Section VIII point, quantified)")

    print("\n=== 2. Storage-side redesign ===")
    stock = StoragePowerModel()
    governor = StorageDvfsGovernor(stock)
    wimpy = wimpy_storage_model(stock)
    print(f"stock rack : {stock.power(0):.0f} W idle, {stock.power(stock.rated_bandwidth):.0f} W full "
          f"({100 * stock.proportionality():.1f}% proportional)")
    print(f"DVFS gov.  : {governor.power(0):.0f} W idle, "
          f"{governor.power(stock.rated_bandwidth):.0f} W full "
          f"(saves {governor.idle_savings_watts():.0f} W whenever I/O is quiet)")
    print(f"wimpy CPUs : {wimpy.power(0):.0f} W idle, "
          f"{wimpy.power(stock.rated_bandwidth):.0f} W full, same bandwidth")

    print("\n=== 3. In-transit staging (Rodero et al.'s placement question) ===")
    spec = PipelineSpec(sampling=SamplingPolicy(24.0))
    insitu = InSituPipeline().execute(RunRequest(spec=spec)).measurement
    print(f"in-situ baseline: {insitu.execution_time:.0f} s, "
          f"{joules_to_kwh(insitu.energy):.1f} kWh")
    for staging in (10, 20, 30, 45):
        pipeline = InTransitPipeline(n_staging_nodes=staging)
        m = pipeline.execute(RunRequest(spec=spec)).measurement
        verdict = "beats in-situ" if m.execution_time < insitu.execution_time else "loses"
        print(
            f"  {staging:3d} staging nodes: {m.execution_time:6.0f} s, "
            f"{joules_to_kwh(m.energy):5.1f} kWh, "
            f"stalls {m.timeline.total('stall'):5.0f} s -> {verdict}"
        )


if __name__ == "__main__":
    main()
